package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(n int, p float64) *Digraph {
	rng := rand.New(rand.NewSource(7))
	return RandomStronglyConnected(rng, n, p, 0.1, 1.0)
}

func BenchmarkFloydWarshall(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		g := benchGraph(n, 0.2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AllPairs(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkJohnson(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		g := benchGraph(n, 0.2)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AllPairsJohnson(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKarpMaxMeanCycle(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		g := benchGraph(n, 1.0) // dense: the pipeline's actual workload
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := MaxMeanCycle(g); !ok {
					b.Fatal("no cycle")
				}
			}
		})
	}
}

func BenchmarkBellmanFord(b *testing.B) {
	g := benchGraph(128, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BellmanFord(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCC(b *testing.B) {
	g := benchGraph(256, 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if comps := SCC(g); len(comps) == 0 {
			b.Fatal("no components")
		}
	}
}
