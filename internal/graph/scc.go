package graph

// SCC computes the strongly connected components of g using Tarjan's
// algorithm (iterative, so deep graphs do not overflow the stack).
// Components are returned in reverse topological order (a component appears
// before any component it can reach... specifically Tarjan emits them in
// reverse topological order of the condensation).
func SCC(g *Digraph) [][]int {
	n := g.N()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]int
		stack   []int // Tarjan stack
		counter int
	)

	type frame struct {
		v    int
		edge int // next outgoing edge index to explore
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		call := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			out := g.Out(v)
			advanced := false
			for f.edge < len(out) {
				w := out[f.edge].To
				f.edge++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
