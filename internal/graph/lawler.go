package graph

import "math"

// MaxMeanCycleBinary computes the maximum cycle mean by Lawler's binary
// search: a cycle of mean greater than lambda exists iff the graph with
// weights lambda - w(e) has a negative cycle. The answer is bracketed by
// the extreme edge weights and bisected to within tol. It serves as an
// independent cross-check and an ablation baseline for Karp's algorithm
// (O(nm log(range/tol)) vs Karp's O(nm)).
// The second return value is false when the graph is acyclic.
func MaxMeanCycleBinary(g *Digraph, tol float64) (float64, bool) {
	if tol <= 0 {
		tol = 1e-9
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	m := 0
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(u) {
			lo = math.Min(lo, e.Weight)
			hi = math.Max(hi, e.Weight)
			m++
		}
	}
	if m == 0 {
		return 0, false
	}
	hasCycleAbove := func(lambda float64) bool {
		// weights lambda - w: negative cycle <=> some cycle mean > lambda.
		shifted := NewDigraph(g.N())
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Out(u) {
				shifted.MustAddEdge(u, e.To, lambda-e.Weight)
			}
		}
		return HasNegativeCycle(shifted)
	}
	// Acyclic graphs have no cycle above even the minimum weight minus one.
	if !hasCycleAbove(lo - 1) {
		return 0, false
	}
	if !hasCycleAbove(hi - tol) {
		// The maximum mean is hi itself only if a cycle of all-max edges
		// exists; bisect handles it below, but guard the degenerate
		// single-value range first.
		// lo and hi are copies of edge weights, not sums: equality is
		// exact when every edge weight coincides.
		if lo == hi { //clocklint:allow floateq

			return hi, true
		}
	}
	a, b := lo-1, hi
	for b-a > tol {
		mid := (a + b) / 2
		if hasCycleAbove(mid) {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, true
}
