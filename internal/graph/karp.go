package graph

import "math"

// MeanCycle is the result of a minimum- or maximum-mean-cycle computation.
type MeanCycle struct {
	// Mean is the optimal cycle mean.
	Mean float64
	// Cycle is one optimal (critical) cycle as a node sequence with the
	// first node repeated at the end, following edge direction. It may be
	// nil in degenerate numerical cases; Mean is always valid.
	Cycle []int
}

// MaxMeanCycle computes the maximum mean weight of a directed cycle in g
// using Karp's characterization, applied per strongly connected component
// (O(n·m) total). The second return value is false when g is acyclic.
func MaxMeanCycle(g *Digraph) (MeanCycle, bool) {
	best := MeanCycle{Mean: math.Inf(-1)}
	found := false
	for _, comp := range SCC(g) {
		mc, ok := karpComponent(g, comp, true)
		if !ok {
			continue
		}
		if !found || mc.Mean > best.Mean {
			best = mc
		}
		found = true
	}
	return best, found
}

// MinMeanCycle computes the minimum mean weight of a directed cycle in g.
// The second return value is false when g is acyclic.
func MinMeanCycle(g *Digraph) (MeanCycle, bool) {
	best := MeanCycle{Mean: math.Inf(1)}
	found := false
	for _, comp := range SCC(g) {
		mc, ok := karpComponent(g, comp, false)
		if !ok {
			continue
		}
		if !found || mc.Mean < best.Mean {
			best = mc
		}
		found = true
	}
	return best, found
}

// karpComponent runs Karp's algorithm on one SCC. maximize selects the
// maximum-mean (true) or minimum-mean (false) variant.
func karpComponent(g *Digraph, comp []int, maximize bool) (MeanCycle, bool) {
	m := len(comp)
	if m == 0 {
		return MeanCycle{}, false
	}
	inComp := make(map[int]int, m) // node -> local index
	for i, v := range comp {
		inComp[v] = i
	}

	// Collect intra-component edges, translated to local indices.
	var edges []Edge
	for _, v := range comp {
		lv := inComp[v]
		for _, e := range g.Out(v) {
			if lw, ok := inComp[e.To]; ok {
				edges = append(edges, Edge{From: lv, To: lw, Weight: e.Weight})
			}
		}
	}
	return karpLocal(edges, m, comp, maximize)
}

// karpLocal runs Karp's algorithm on one SCC given its edges in local
// indices (comp maps local back to graph ids for the reported cycle).
// Shared by the adjacency-list and CSR per-component front ends.
func karpLocal(edges []Edge, m int, comp []int, maximize bool) (MeanCycle, bool) {
	if m == 0 {
		return MeanCycle{}, false
	}
	if len(edges) == 0 {
		return MeanCycle{}, false
	}
	if m == 1 {
		// Only self-loops are possible here.
		best, has := 0.0, false
		for _, e := range edges {
			if !has || maximize && e.Weight > best || !maximize && e.Weight < best {
				best = e.Weight
				has = true
			}
		}
		if !has {
			return MeanCycle{}, false
		}
		return MeanCycle{Mean: best, Cycle: []int{comp[0], comp[0]}}, true
	}

	sign := 1.0
	if maximize {
		sign = -1.0 // run the min variant on negated weights
	}

	// D[k][v] = min total weight (in sign-adjusted space) of a walk with
	// exactly k edges from the source (local node 0) to v.
	unset := math.Inf(1)
	D := make([][]float64, m+1)
	for k := 0; k <= m; k++ {
		D[k] = make([]float64, m)
		for v := 0; v < m; v++ {
			D[k][v] = unset
		}
	}
	D[0][0] = 0
	for k := 1; k <= m; k++ {
		prev, cur := D[k-1], D[k]
		for _, e := range edges {
			if math.IsInf(prev[e.From], 1) {
				continue
			}
			if nd := prev[e.From] + sign*e.Weight; nd < cur[e.To] {
				cur[e.To] = nd
			}
		}
	}

	// lambda* = min over v of max over k of (D[m][v]-D[k][v])/(m-k).
	lambda := math.Inf(1)
	for v := 0; v < m; v++ {
		if math.IsInf(D[m][v], 1) {
			continue
		}
		worst := math.Inf(-1)
		for k := 0; k < m; k++ {
			if math.IsInf(D[k][v], 1) {
				continue
			}
			if r := (D[m][v] - D[k][v]) / float64(m-k); r > worst {
				worst = r
			}
		}
		if worst < lambda {
			lambda = worst
		}
	}
	if math.IsInf(lambda, 1) {
		return MeanCycle{}, false
	}

	cycle := criticalCycle(edges, m, comp, sign, lambda)
	return MeanCycle{Mean: sign * lambda, Cycle: cycle}, true
}

// criticalCycle finds a cycle whose mean (in sign-adjusted space) equals
// lambda: subtract lambda from every adjusted weight, compute shortest-path
// potentials, and search for a cycle among tight edges. Every cycle of the
// tight subgraph is critical.
func criticalCycle(edges []Edge, m int, comp []int, sign, lambda float64) []int {
	scale := 1.0 + math.Abs(lambda)
	for _, e := range edges {
		if a := math.Abs(e.Weight); a > scale {
			scale = a
		}
	}
	tol := 1e-9 * scale

	// Bellman-Ford from an implicit super-source (all potentials start 0);
	// reduced weights have no negative cycles, so m passes converge.
	pot := make([]float64, m)
	for pass := 0; pass < m; pass++ {
		changed := false
		for _, e := range edges {
			w := sign*e.Weight - lambda
			if nd := pot[e.From] + w; nd < pot[e.To]-tol {
				pot[e.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Tight subgraph adjacency.
	tight := make([][]int, m)
	for _, e := range edges {
		w := sign*e.Weight - lambda
		if math.Abs(pot[e.From]+w-pot[e.To]) <= 2*tol {
			tight[e.From] = append(tight[e.From], e.To)
		}
	}

	// Iterative DFS looking for a back edge.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, m)
	parent := make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct{ v, i int }
	for s := 0; s < m; s++ {
		if color[s] != white {
			continue
		}
		stack := []frame{{v: s}}
		color[s] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(tight[f.v]) {
				w := tight[f.v][f.i]
				f.i++
				switch color[w] {
				case white:
					color[w] = gray
					parent[w] = f.v
					stack = append(stack, frame{v: w})
				case gray:
					// Found a back edge f.v -> w; the cycle is
					// w -> ... -> f.v -> w along parent pointers.
					rev := []int{f.v}
					for u := f.v; u != w; {
						u = parent[u]
						rev = append(rev, u)
					}
					cyc := make([]int, 0, len(rev)+1)
					for i := len(rev) - 1; i >= 0; i-- {
						cyc = append(cyc, comp[rev[i]])
					}
					cyc = append(cyc, comp[w])
					return normalizeCycle(cyc)
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// normalizeCycle removes an accidental duplicated head (w, w, ...) that the
// construction above can produce when the cycle is a self-loop, and ensures
// first == last.
func normalizeCycle(c []int) []int {
	if len(c) < 2 {
		return nil
	}
	if c[0] != c[len(c)-1] {
		c = append(c, c[0])
	}
	return c
}

// MaxMeanCycleMatrix is MaxMeanCycle for a dense weight matrix (entries
// +Inf for absent edges, diagonal ignored). Convenience for the core
// pipeline, which works on complete digraphs of estimated shifts.
func MaxMeanCycleMatrix(w [][]float64) (MeanCycle, bool) {
	g, err := FromMatrix(w)
	if err != nil {
		return MeanCycle{}, false
	}
	return MaxMeanCycle(g)
}
