package graph

import "math"

// Incremental repair kernels for decrease-only closure maintenance.
//
// Setting: ms is an all-pairs shortest-path closure (as produced by
// FloydWarshallDense, zero diagonal, no negative cycles) of some weight
// matrix, and one direct edge u -> v has been TIGHTENED to a new weight w
// (streaming observations only ever shrink the local-shift weights, so
// increases never occur on this path). A tightened edge can only lower
// path weights, and any newly improved pair (i, j) must route
// i ~> u -> v ~> j through old-closure segments, so the whole repair
// reduces to one pass of
//
//	ms[i][j] = min(ms[i][j], ms[i][u] + w + ms[v][j]).
//
// Two facts bound the affected region. By the triangle inequality of the
// old closure, entry (i, j) can improve only if the candidate already
// improves at (i, v):
//
//	ms[i][u] + w + ms[v][j] < ms[i][j] <= ms[i][v] + ms[v][j]
//	  =>  ms[i][u] + w < ms[i][v]
//
// and symmetrically only if w + ms[v][j] < ms[u][j]. The improved region
// is therefore (rows that improve into v) x (columns that improve out of
// u) — the wavefront reachable through the dirty edge — and membership of
// each side is decidable in O(n) against the OLD closure.

// inertTol is the relative certification margin of ClosureEdgeInert: a
// candidate must clear the incumbent entry by this margin before the edge
// is certified inert. It matches the repository's shortest-path tolerance
// scale (see negCycleTol) and sits orders of magnitude above accumulated
// rounding noise (~n ulps), so the bitwise-preservation argument below
// survives floating point.
const inertTol = 1e-9

// ClosureEdgeInert reports whether tightening edge u -> v to weight w
// provably leaves the closure ms unchanged BIT FOR BIT, i.e. whether a
// fresh batch Floyd-Warshall on the tightened weights would reproduce ms
// exactly. The certificate is the row test above with a safety margin:
//
//	for all i:  ms[i][u] + w >= ms[i][v] + tol
//
// With the margin, every path sum routed through the tightened edge —
// under ANY summation order a shortest-path kernel might use — exceeds the
// incumbent closure values throughout the recomputation, so no candidate
// involving the edge can win a min and every entry keeps its old bits.
// A false return means some entry may genuinely improve (or sits within
// the margin, where rounding could flip a bit): callers must re-solve or
// repair. O(n), allocation-free.
func ClosureEdgeInert(ms *Dense, u, v int, w float64) bool {
	if u == v || math.IsInf(w, 1) {
		return true // self-loops and +Inf edges constrain nothing
	}
	n := ms.n
	for i := 0; i < n; i++ {
		iu := ms.data[i*n+u]
		if math.IsInf(iu, 1) {
			continue // no path into u: candidates through the edge stay +Inf
		}
		iv := ms.data[i*n+v]
		if iu+w < iv+inertTol*(1+math.Abs(iv)) {
			return false
		}
	}
	return true
}

// ClosureDecreaseEdge applies the decrease-only closure update for the
// tightened edge u -> v with new weight w, restricted to the improved
// wavefront: rows R = {i : ms[i][u] + w < ms[i][v]} crossed with columns
// C = {j : w + ms[v][j] < ms[u][j]}. Both sets are computed from the old
// closure BEFORE any entry mutates — R x C covers every entry the
// single-pass rule can improve, and freezing the membership tests keeps
// row u's own updates from perturbing the column test. Every strictly
// improved entry is appended to touched as a packed index i*n + j; the
// (possibly grown) slice is returned. rows and cols are caller scratch of
// capacity >= n (contents overwritten).
//
// Preconditions: ms has a zero diagonal and the tightened edge closes no
// negative cycle, i.e. ms[v][u] + w >= 0 (callers check and fall back to a
// batch solve otherwise, which surfaces the negative cycle through the
// usual A_max machinery). Under that precondition neither column u nor
// row v can improve, so base and vRow below read stable old-closure
// values and each entry receives exactly min(old, ms0[i][u] + w +
// ms0[v][j]).
//
// The result is the exact closure of the tightened weights (in exact
// arithmetic); under floating point it is correct to summation-order
// rounding, which is why the strict bit-identical path certifies with
// ClosureEdgeInert instead and falls back to a batch solve when that
// fails.
func ClosureDecreaseEdge(ms *Dense, u, v int, w float64, rows, cols []int, touched []int32) []int32 {
	n := ms.n
	if u == v || math.IsInf(w, 1) {
		return touched
	}
	rows = rows[:0]
	for i := 0; i < n; i++ {
		iu := ms.data[i*n+u]
		if !math.IsInf(iu, 1) && iu+w < ms.data[i*n+v] {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return touched
	}
	uRow := ms.data[u*n : u*n+n]
	vRow := ms.data[v*n : v*n+n]
	cols = cols[:0]
	for j := 0; j < n; j++ {
		vj := vRow[j]
		if !math.IsInf(vj, 1) && w+vj < uRow[j] {
			cols = append(cols, j)
		}
	}
	for _, i := range rows {
		base := ms.data[i*n+u] + w
		row := ms.data[i*n : i*n+n]
		for _, j := range cols {
			if cand := base + vRow[j]; cand < row[j] {
				row[j] = cand
				touched = append(touched, int32(i*n+j))
			}
		}
	}
	return touched
}
