package graph

import (
	"errors"
	"math"
	"testing"
)

func TestAllPairsSmall(t *testing.T) {
	g := NewDigraph(3)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, -2)
	g.MustAddEdge(0, 2, 5)

	d, err := AllPairs(g)
	if err != nil {
		t.Fatalf("AllPairs: %v", err)
	}
	if d[0][2] != 2 {
		t.Errorf("d[0][2] = %v, want 2", d[0][2])
	}
	if !math.IsInf(d[2][0], 1) {
		t.Errorf("d[2][0] = %v, want +Inf", d[2][0])
	}
	if d[1][1] != 0 {
		t.Errorf("d[1][1] = %v, want 0", d[1][1])
	}
}

func TestAllPairsNegativeCycle(t *testing.T) {
	g := NewDigraph(2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, -2)
	if _, err := AllPairs(g); !errors.Is(err, ErrNegativeCycle) {
		t.Errorf("AllPairs error = %v, want ErrNegativeCycle", err)
	}
}

func TestFloydWarshallZeroCycleStaysZero(t *testing.T) {
	// A zero-weight cycle must not be flagged and must keep a zero diagonal.
	g := NewDigraph(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, -1)
	g.MustAddEdge(2, 0, -1)
	d, err := AllPairs(g)
	if err != nil {
		t.Fatalf("AllPairs: %v", err)
	}
	for i := 0; i < 3; i++ {
		if d[i][i] != 0 {
			t.Errorf("d[%d][%d] = %v, want 0", i, i, d[i][i])
		}
	}
}

func TestFloydWarshallTriangleInequality(t *testing.T) {
	g := NewDigraph(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(0, 5, 100)
	d, err := AllPairs(g)
	if err != nil {
		t.Fatalf("AllPairs: %v", err)
	}
	if d[0][5] != 5 {
		t.Errorf("d[0][5] = %v, want 5", d[0][5])
	}
	n := len(d)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if d[i][j] > d[i][k]+d[k][j]+1e-9 {
					t.Fatalf("triangle inequality violated: d[%d][%d]=%v > d[%d][%d]+d[%d][%d]=%v",
						i, j, d[i][j], i, k, k, j, d[i][k]+d[k][j])
				}
			}
		}
	}
}

func TestFloydWarshallEmpty(t *testing.T) {
	if err := FloydWarshall(nil); err != nil {
		t.Errorf("FloydWarshall(nil) = %v, want nil", err)
	}
}
