package graph

import (
	"container/heap"
	"math"
)

// AllPairsJohnson computes all-pairs shortest paths with Johnson's
// algorithm: one Bellman-Ford pass from a virtual super-source produces
// potentials that reweight all edges non-negatively, then one Dijkstra per
// source. For sparse graphs (m << n^2) this is O(nm + n^2 log n), beating
// Floyd-Warshall's O(n^3); results are identical.
// It returns ErrNegativeCycle if the graph contains a negative cycle.
func AllPairsJohnson(g *Digraph) ([][]float64, error) {
	n := g.N()
	// Potentials via Bellman-Ford from an implicit super-source (all
	// distances start at 0, equivalent to zero-weight edges from a fresh
	// node to every vertex).
	pot := make([]float64, n)
	for pass := 0; pass < n; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			pu := pot[u]
			for _, e := range g.Out(u) {
				if nd := pu + e.Weight; nd < pot[e.To] {
					pot[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for u := 0; u < n; u++ {
		pu := pot[u]
		for _, e := range g.Out(u) {
			if pu+e.Weight < pot[e.To]-1e-9*(1+math.Abs(pot[e.To])) {
				return nil, ErrNegativeCycle
			}
		}
	}

	// Reweighted edges: w'(u,v) = w(u,v) + pot[u] - pot[v] >= 0 (up to
	// float noise, clamped).
	type arc struct {
		to int
		w  float64
	}
	adj := make([][]arc, n)
	for u := 0; u < n; u++ {
		pu := pot[u]
		for _, e := range g.Out(u) {
			w := e.Weight + pu - pot[e.To]
			if w < 0 {
				w = 0 // numerical noise only; negatives were ruled out above
			}
			adj[u] = append(adj[u], arc{to: e.To, w: w})
		}
	}

	dist := NewMatrix(n, Inf)
	// Dijkstra per source on the reweighted graph.
	d := make([]float64, n)
	for src := 0; src < n; src++ {
		for i := range d {
			d[i] = math.Inf(1)
		}
		d[src] = 0
		pq := &distHeap{{node: src, dist: 0}}
		for pq.Len() > 0 {
			item := heap.Pop(pq).(distItem)
			if item.dist > d[item.node] {
				continue // stale entry
			}
			for _, a := range adj[item.node] {
				if nd := item.dist + a.w; nd < d[a.to] {
					d[a.to] = nd
					heap.Push(pq, distItem{node: a.to, dist: nd})
				}
			}
		}
		for v := 0; v < n; v++ {
			if !math.IsInf(d[v], 1) {
				dist[src][v] = d[v] - pot[src] + pot[v]
			}
		}
		dist[src][src] = 0
	}
	return dist, nil
}

type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
