package graph

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestBellmanFordSimple(t *testing.T) {
	// 0 -> 1 (4), 0 -> 2 (1), 2 -> 1 (2), 1 -> 3 (1)
	g := NewDigraph(5)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 1, 2)
	g.MustAddEdge(1, 3, 1)

	sp, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatalf("BellmanFord: %v", err)
	}
	want := []float64{0, 3, 1, 4, math.Inf(1)}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Errorf("Dist[%d] = %v, want %v", v, sp.Dist[v], d)
		}
	}
	if got := sp.Path(3); !reflect.DeepEqual(got, []int{0, 2, 1, 3}) {
		t.Errorf("Path(3) = %v, want [0 2 1 3]", got)
	}
	if got := sp.Path(4); got != nil {
		t.Errorf("Path(unreachable) = %v, want nil", got)
	}
}

func TestBellmanFordNegativeEdges(t *testing.T) {
	g := NewDigraph(4)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, -3)
	g.MustAddEdge(0, 2, 4)
	g.MustAddEdge(2, 3, 2)

	sp, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatalf("BellmanFord: %v", err)
	}
	if sp.Dist[2] != 2 {
		t.Errorf("Dist[2] = %v, want 2 (via negative edge)", sp.Dist[2])
	}
	if sp.Dist[3] != 4 {
		t.Errorf("Dist[3] = %v, want 4", sp.Dist[3])
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := NewDigraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, -2)
	g.MustAddEdge(2, 1, 1) // 1 -> 2 -> 1 has weight -1

	if _, err := BellmanFord(g, 0); !errors.Is(err, ErrNegativeCycle) {
		t.Errorf("BellmanFord error = %v, want ErrNegativeCycle", err)
	}
}

func TestBellmanFordUnreachableNegativeCycleOK(t *testing.T) {
	g := NewDigraph(4)
	g.MustAddEdge(0, 1, 1)
	// Negative cycle 2 <-> 3 is unreachable from 0.
	g.MustAddEdge(2, 3, -5)
	g.MustAddEdge(3, 2, 1)

	sp, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatalf("BellmanFord with unreachable negative cycle: %v", err)
	}
	if sp.Dist[1] != 1 {
		t.Errorf("Dist[1] = %v, want 1", sp.Dist[1])
	}
}

func TestBellmanFordBadSource(t *testing.T) {
	g := NewDigraph(2)
	if _, err := BellmanFord(g, 5); err == nil {
		t.Error("BellmanFord(out-of-range source) error = nil, want non-nil")
	}
}

func TestHasNegativeCycle(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Digraph
		want  bool
	}{
		{
			name:  "empty",
			build: func() *Digraph { return NewDigraph(0) },
			want:  false,
		},
		{
			name: "positive cycle",
			build: func() *Digraph {
				g := NewDigraph(2)
				g.MustAddEdge(0, 1, 1)
				g.MustAddEdge(1, 0, 1)
				return g
			},
			want: false,
		},
		{
			name: "zero cycle",
			build: func() *Digraph {
				g := NewDigraph(2)
				g.MustAddEdge(0, 1, 3)
				g.MustAddEdge(1, 0, -3)
				return g
			},
			want: false,
		},
		{
			name: "negative cycle",
			build: func() *Digraph {
				g := NewDigraph(2)
				g.MustAddEdge(0, 1, 3)
				g.MustAddEdge(1, 0, -3.5)
				return g
			},
			want: true,
		},
		{
			name: "negative self loop",
			build: func() *Digraph {
				g := NewDigraph(1)
				g.MustAddEdge(0, 0, -0.1)
				return g
			},
			want: true,
		},
		{
			name: "negative cycle in second component",
			build: func() *Digraph {
				g := NewDigraph(4)
				g.MustAddEdge(0, 1, 1)
				g.MustAddEdge(2, 3, -1)
				g.MustAddEdge(3, 2, 0.5)
				return g
			},
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := HasNegativeCycle(tt.build()); got != tt.want {
				t.Errorf("HasNegativeCycle = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestFindNegativeCycle(t *testing.T) {
	g := NewDigraph(5)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, -4)
	g.MustAddEdge(3, 1, 0.5) // cycle 1->2->3->1 weight -0.5
	g.MustAddEdge(3, 4, 10)

	cyc := FindNegativeCycle(g)
	if cyc == nil {
		t.Fatal("FindNegativeCycle = nil, want a cycle")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("cycle %v does not close", cyc)
	}
	if w := cycleWeight(t, g, cyc); w >= 0 {
		t.Errorf("cycle %v weight = %v, want negative", cyc, w)
	}
}

func TestFindNegativeCycleNone(t *testing.T) {
	g := NewDigraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	if cyc := FindNegativeCycle(g); cyc != nil {
		t.Errorf("FindNegativeCycle = %v, want nil", cyc)
	}
}

// cycleWeight computes the total weight of a closed node sequence using the
// minimum-weight edge between consecutive nodes.
func cycleWeight(t *testing.T, g *Digraph, cyc []int) float64 {
	t.Helper()
	total := 0.0
	for i := 0; i+1 < len(cyc); i++ {
		best := math.Inf(1)
		for _, e := range g.Out(cyc[i]) {
			if e.To == cyc[i+1] && e.Weight < best {
				best = e.Weight
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("cycle %v uses missing edge %d->%d", cyc, cyc[i], cyc[i+1])
		}
		total += best
	}
	return total
}

// TestBellmanFordMatchesFloydWarshall cross-checks the two shortest-path
// implementations on random graphs without negative cycles.
func TestBellmanFordMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		g := RandomDigraph(rng, n, 0.4, 0.1, 5) // positive weights: no negative cycles
		ap, err := AllPairs(g)
		if err != nil {
			t.Fatalf("trial %d: AllPairs: %v", trial, err)
		}
		for s := 0; s < n; s++ {
			sp, err := BellmanFord(g, s)
			if err != nil {
				t.Fatalf("trial %d: BellmanFord(%d): %v", trial, s, err)
			}
			for v := 0; v < n; v++ {
				if math.Abs(sp.Dist[v]-ap[s][v]) > 1e-9 && !(math.IsInf(sp.Dist[v], 1) && math.IsInf(ap[s][v], 1)) {
					t.Fatalf("trial %d: dist(%d,%d): BF=%v FW=%v", trial, s, v, sp.Dist[v], ap[s][v])
				}
			}
		}
	}
}
