package graph

import (
	"math"
	"slices"
)

// AllPairsJohnsonCSR is Johnson's algorithm native to CSR: it computes
// all-pairs shortest paths over g and writes them as a CSR "closure" into
// out — row u lists exactly the nodes reachable from u (always including
// u itself at distance 0), in ascending order. Unreachable pairs are
// simply absent, so the output costs O(sum of reachable-set sizes)
// instead of O(n^2): on a graph whose condensation is wide (many mutually
// unreachable components) the closure stays as sparse as the reachability
// relation itself.
//
// Per-source state is reset via a touched-node list, so each Dijkstra
// costs O(|reach| log |reach|) rather than O(n). Returns ErrNegativeCycle
// under the usual relative tolerance.
func AllPairsJohnsonCSR(g *CSR, out *CSR, s *JohnsonScratch) error {
	g.Build()
	n := g.n
	if cap(s.pot) < n {
		s.pot = make([]float64, n)
		s.dist = make([]float64, n)
	}
	s.pot = s.pot[:n]
	s.dist = s.dist[:n]

	// Potentials via Bellman-Ford from an implicit super-source.
	pot := s.pot
	for i := range pot {
		pot[i] = 0
	}
	for pass := 0; pass < n; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			pu := pot[u]
			for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
				if nd := pu + g.wgt[e]; nd < pot[g.colIdx[e]] {
					pot[g.colIdx[e]] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for u := 0; u < n; u++ {
		pu := pot[u]
		for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
			v := g.colIdx[e]
			if pu+g.wgt[e] < pot[v]-1e-9*(1+math.Abs(pot[v])) {
				return ErrNegativeCycle
			}
		}
	}

	// Reweighted copy w'(u,v) = w + pot[u] - pot[v] >= 0 (clamping float
	// noise); g itself stays untouched.
	s.wgt = growFloatsCap(s.wgt, len(g.wgt))
	for u := 0; u < n; u++ {
		pu := pot[u]
		for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
			x := g.wgt[e] + pu - pot[g.colIdx[e]]
			if x < 0 {
				x = 0
			}
			s.wgt[e] = x
		}
	}

	out.Reset(n)
	dist := s.dist
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	s.touched = s.touched[:0]
	for src := 0; src < n; src++ {
		out.rowPtr[src] = len(out.colIdx)
		dist[src] = 0
		s.touched = append(s.touched, src)
		h := s.heap[:0]
		h = append(h, distItem{node: src, dist: 0})
		for len(h) > 0 {
			item := h[0]
			last := len(h) - 1
			h[0] = h[last]
			h = h[:last]
			siftDown(h, 0)
			if item.dist > dist[item.node] {
				continue // stale entry
			}
			u := item.node
			for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
				v := g.colIdx[e]
				nd := item.dist + s.wgt[e]
				if nd < dist[v] {
					if math.IsInf(dist[v], 1) {
						s.touched = append(s.touched, v)
					}
					dist[v] = nd
					h = append(h, distItem{node: v, dist: nd})
					siftUp(h, len(h)-1)
				}
			}
		}
		s.heap = h[:0]
		slices.Sort(s.touched)
		psrc := pot[src]
		for _, v := range s.touched {
			out.colIdx = append(out.colIdx, v)
			if v == src {
				out.wgt = append(out.wgt, 0)
			} else {
				out.wgt = append(out.wgt, dist[v]-psrc+pot[v])
			}
			dist[v] = math.Inf(1)
		}
		s.touched = s.touched[:0]
	}
	out.rowPtr[n] = len(out.colIdx)
	out.built = true
	return nil
}

// MaxMeanCycleCSR computes the maximum (maximize) or minimum mean cycle
// of the CSR digraph g, running Karp's algorithm independently per
// strongly connected component — O(k·m_k) time and O(k·m_k) walk-table
// memory per component of size k instead of a single O(n·m) pass over the
// whole graph. The second return value is false when g is acyclic.
func MaxMeanCycleCSR(g *CSR, maximize bool) (MeanCycle, bool) {
	g.Build()
	n := g.n
	var scc SCCScratch
	nc := SCCCSR(g, &scc)
	// Bucket members per component, ascending.
	size := make([]int, nc)
	for _, c := range scc.CompOf {
		size[c]++
	}
	start := make([]int, nc+1)
	for c := 0; c < nc; c++ {
		start[c+1] = start[c] + size[c]
	}
	members := make([]int, n)
	fill := make([]int, nc)
	copy(fill, start[:nc])
	for v := 0; v < n; v++ {
		c := scc.CompOf[v]
		members[fill[c]] = v
		fill[c]++
	}
	local := make([]int, n)

	best := MeanCycle{}
	found := false
	var edges []Edge
	for c := 0; c < nc; c++ {
		comp := members[start[c]:start[c+1]]
		for i, v := range comp {
			local[v] = i
		}
		edges = edges[:0]
		for _, v := range comp {
			for e := g.rowPtr[v]; e < g.rowPtr[v+1]; e++ {
				w := g.colIdx[e]
				if scc.CompOf[w] == c {
					edges = append(edges, Edge{From: local[v], To: local[w], Weight: g.wgt[e]})
				}
			}
		}
		mc, ok := karpLocal(edges, len(comp), comp, maximize)
		if !ok {
			continue
		}
		if !found || (maximize && mc.Mean > best.Mean) || (!maximize && mc.Mean < best.Mean) {
			best = mc
		}
		found = true
	}
	return best, found
}
