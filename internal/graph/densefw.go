package graph

import "math"

// Cache-blocked, lane-parallel Floyd-Warshall on the flat Dense layout.
//
// For a fixed pivot k, the relaxation d[i][j] = min(d[i][j], d[i][k] +
// d[k][j]) touches row i and row k only: row k is invariant during pivot k
// (d[k][j] cannot improve via d[k][k] = 0), so rows are independent and can
// be processed by concurrent lanes, in tiles, or in any order without
// changing a single bit of the result. The kernels below exploit exactly
// that freedom — the per-element sequence of candidate sums over k is
// identical to the classic triple loop, so serial, tiled, and parallel
// paths all produce bit-identical matrices.

// fwTile is the column-tile width. At 2048 columns a pivot-row tile is
// 16 KiB — half a typical L1d — so it stays resident while the row tiles
// of the block stream through. Matrices with n <= fwTile (the common case
// here) see a single tile and zero overhead.
const fwTile = 2048

// fwParallelMinRows is the minimum number of rows per lane worth the
// barrier traffic; below it the kernel runs inline.
const fwParallelMinRows = 16

// FloydWarshallDense runs Floyd-Warshall in place on d (entries are direct
// edge weights, +Inf absent, diagonal 0) using up to pool.Lanes() lanes.
// On return d holds all-pairs shortest-path distances; ErrNegativeCycle is
// reported exactly as by FloydWarshall. Results are bit-identical to
// FloydWarshall for every pool size.
func FloydWarshallDense(d *Dense, pool *Pool) error {
	n := d.n
	lanes := laneCount(pool, n, fwParallelMinRows)
	if lanes <= 1 {
		for k := 0; k < n; k++ {
			fwRelaxRows(d, k, 0, n)
		}
	} else {
		bar := NewBarrier(lanes)
		pool.Run(lanes, func(part int) {
			lo, hi := shardRange(n, lanes, part)
			for k := 0; k < n; k++ {
				fwRelaxRows(d, k, lo, hi)
				bar.Wait()
			}
		})
	}
	for i := 0; i < n; i++ {
		dii := d.data[i*n+i]
		if dii < -negCycleTol(dii) {
			return ErrNegativeCycle
		}
		if dii < 0 {
			d.data[i*n+i] = 0
		}
	}
	return nil
}

// fwRelaxRows applies pivot k to rows [lo, hi), tiling the column loop.
// The inner loop is branchless: every element stores min(d[i][j], d[i][k] +
// d[k][j]), which the compiler lowers to a predictable MIN sequence —
// no data-dependent branch to mispredict — and dik + (+Inf) = +Inf never
// beats a stored distance, so absent pivot-row entries need no explicit
// test. Inputs are NaN-free by validation, so min agrees exactly with the
// classic compare-and-store.
func fwRelaxRows(d *Dense, k, lo, hi int) {
	n := d.n
	dk := d.data[k*n : k*n+n]
	for jb := 0; jb < n; jb += fwTile {
		je := jb + fwTile
		if je > n {
			je = n
		}
		tile := dk[jb:je]
		for i := lo; i < hi; i++ {
			// Row k is invariant during its own pivot (d[k][k] = 0), and the
			// branchless store below would otherwise WRITE the unchanged
			// values back while other lanes read them — skip it.
			if i == k {
				continue
			}
			di := d.data[i*n : i*n+n]
			dik := di[k]
			if math.IsInf(dik, 1) {
				continue
			}
			row := di[jb:je]
			for j, dkj := range tile {
				row[j] = min(row[j], dik+dkj)
			}
		}
	}
}
