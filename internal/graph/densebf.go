package graph

import (
	"errors"
	"math"
)

// BellmanFordDense computes single-source shortest paths from src over the
// dense weight matrix w (w[u][v] is the u->v edge weight, +Inf absent,
// diagonal ignored — set it to +Inf). dist and parent are caller-owned
// scratch of length w.N(); on success dist[v] is the shortest distance
// (+Inf unreachable) and parent[v] the predecessor (-1 for the source and
// unreachable nodes).
//
// The relaxation order — passes; source row u ascending; target column v
// ascending — matches BellmanFord on a Digraph whose adjacency was built
// in row-major order, so the dist vector is bit-identical to that path.
// It returns ErrNegativeCycle under the same relative tolerance.
func BellmanFordDense(w *Dense, src int, dist []float64, parent []int) error {
	n := w.n
	if src < 0 || src >= n {
		return errors.New("graph: source out of range")
	}
	if len(dist) != n || len(parent) != n {
		return errors.New("graph: scratch length mismatch")
	}
	for i := 0; i < n; i++ {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0
	return BellmanFordDenseFrom(w, dist, parent)
}

// BellmanFordDenseFrom is BellmanFordDense with a caller-initialized
// distance vector: every finite dist entry acts as a source pinned at
// that potential (the classic multi-source formulation the hierarchical
// solver uses to extend boundary corrections into cluster interiors).
// parent must be pre-initialized by the caller; dist entries may only
// decrease. The relaxation order and negative-cycle tolerance are those
// of BellmanFordDense.
func BellmanFordDenseFrom(w *Dense, dist []float64, parent []int) error {
	n := w.n
	if len(dist) != n || len(parent) != n {
		return errors.New("graph: scratch length mismatch")
	}
	for pass := 0; pass < n-1; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			if math.IsInf(du, 1) {
				continue
			}
			row := w.data[u*n : u*n+n]
			for v, wv := range row {
				if nd := du + wv; nd < dist[v] {
					dist[v] = nd
					parent[v] = u
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// One more pass: any relaxation now implies a reachable negative cycle,
	// with the same generous relative tolerance as BellmanFord.
	for u := 0; u < n; u++ {
		du := dist[u]
		if math.IsInf(du, 1) {
			continue
		}
		row := w.data[u*n : u*n+n]
		for v, wv := range row {
			if du+wv < dist[v]-1e-9*(1+math.Abs(dist[v])) {
				return ErrNegativeCycle
			}
		}
	}
	return nil
}
