package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func canonicalize(comps [][]int) [][]int {
	out := make([][]int, len(comps))
	for i, c := range comps {
		out[i] = append([]int(nil), c...)
		sort.Ints(out[i])
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

func TestSCCTable(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
		want  [][]int
	}{
		{
			name: "empty graph",
			n:    0,
			want: [][]int{},
		},
		{
			name: "singletons no edges",
			n:    3,
			want: [][]int{{0}, {1}, {2}},
		},
		{
			name:  "two cycle",
			n:     2,
			edges: [][2]int{{0, 1}, {1, 0}},
			want:  [][]int{{0, 1}},
		},
		{
			name:  "chain",
			n:     3,
			edges: [][2]int{{0, 1}, {1, 2}},
			want:  [][]int{{0}, {1}, {2}},
		},
		{
			name:  "two components",
			n:     5,
			edges: [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}, {1, 2}},
			want:  [][]int{{0, 1}, {2, 3, 4}},
		},
		{
			name:  "self loop",
			n:     2,
			edges: [][2]int{{0, 0}},
			want:  [][]int{{0}, {1}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := NewDigraph(tt.n)
			for _, e := range tt.edges {
				g.MustAddEdge(e[0], e[1], 1)
			}
			got := canonicalize(SCC(g))
			want := canonicalize(tt.want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("SCC = %v, want %v", got, want)
			}
		})
	}
}

// bruteSCC computes components via reachability closure.
func bruteSCC(g *Digraph) [][]int {
	n := g.N()
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
		// BFS
		queue := []int{i}
		reach[i][i] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.Out(v) {
				if !reach[i][e.To] {
					reach[i][e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
	}
	assigned := make([]bool, n)
	var comps [][]int
	for i := 0; i < n; i++ {
		if assigned[i] {
			continue
		}
		comp := []int{i}
		assigned[i] = true
		for j := i + 1; j < n; j++ {
			if !assigned[j] && reach[i][j] && reach[j][i] {
				comp = append(comp, j)
				assigned[j] = true
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func TestSCCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		g := RandomDigraph(rng, n, 0.25, 0, 1)
		got := canonicalize(SCC(g))
		want := canonicalize(bruteSCC(g))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d): SCC = %v, want %v", trial, n, got, want)
		}
	}
}

func TestSCCReverseTopologicalOrder(t *testing.T) {
	// 0 -> 1 -> 2 (three singleton components): Tarjan must emit a component
	// before any component that reaches it.
	g := NewDigraph(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	comps := SCC(g)
	pos := make(map[int]int)
	for i, c := range comps {
		for _, v := range c {
			pos[v] = i
		}
	}
	if !(pos[2] < pos[1] && pos[1] < pos[0]) {
		t.Errorf("components not in reverse topological order: %v", comps)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	const n = 200000
	g := NewDigraph(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	if got := len(SCC(g)); got != n {
		t.Errorf("len(SCC) = %d, want %d", got, n)
	}
}
