package graph

import "math"

// KarpScratch holds every buffer MaxMeanCycleDense needs: the
// sign-adjusted transposed weight matrix, the O(m^2) walk table D[k][v],
// shortest-path potentials, and the tight-subgraph DFS state. The zero
// value is ready; buffers grow to the largest component seen and are then
// reused, so steady-state calls allocate nothing.
type KarpScratch struct {
	wT     Dense     // wT[v][u] = sign * w(u -> v); diagonal +Inf
	d      []float64 // (m+1) x m table, row-major
	pot    []float64
	color  []int
	parent []int
	stackV []int
	stackI []int
	cycle  []int
}

func (s *KarpScratch) reset(m int) {
	s.wT.Reset(m)
	if cap(s.d) < (m+1)*m {
		s.d = make([]float64, (m+1)*m)
	}
	s.d = s.d[:(m+1)*m]
	if cap(s.pot) < m {
		s.pot = make([]float64, m)
		s.color = make([]int, m)
		s.parent = make([]int, m)
		s.stackV = make([]int, 0, m)
		s.stackI = make([]int, 0, m)
	}
	s.pot = s.pot[:m]
	s.color = s.color[:m]
	s.parent = s.parent[:m]
	s.cycle = s.cycle[:0]
}

// karpMinCols is the minimum number of columns per lane in the parallel
// walk-table update.
const karpMinCols = 32

// MaxMeanCycleDense computes the maximum (maximize) or minimum mean cycle
// of the complete digraph induced by ms on the node subset comp: the edge
// u -> v carries weight ms[comp[u]][comp[v]], diagonal ignored. All
// off-diagonal subset entries must be finite — exactly what a
// Floyd-Warshall closure restricted to one strongly connected component
// yields; inputs with +Inf entries fall back to the adjacency-list
// algorithm. The returned cycle aliases the scratch and is valid until the
// next call with the same scratch.
//
// The walk table is updated column-parallel per walk length with the
// min-reduction over sources in fixed ascending order, so the cycle mean
// is bit-identical for every pool size.
func MaxMeanCycleDense(ms *Dense, comp []int, maximize bool, s *KarpScratch, pool *Pool) (MeanCycle, bool) {
	m := len(comp)
	if m <= 1 {
		// The complete-digraph view has no self-loops, so singletons (and
		// empty subsets) carry no cycle.
		return MeanCycle{}, false
	}
	s.reset(m)

	sign := 1.0
	if maximize {
		sign = -1.0 // run the min variant on negated weights
	}
	// Build the sign-adjusted transpose; wT rows make both the walk-table
	// update and the potential relaxation stream contiguous memory.
	for v := 0; v < m; v++ {
		row := s.wT.Row(v)
		cv := comp[v]
		for u := 0; u < m; u++ {
			x := ms.At(comp[u], cv)
			if math.IsInf(x, 1) {
				return maxMeanCycleSubsetSlow(ms, comp, maximize)
			}
			row[u] = sign * x
		}
		row[v] = Inf // no self-loops
	}

	// D[k][v] = min total adjusted weight of a walk with exactly k edges
	// from local node 0 to v.
	d := s.d
	for v := 0; v < m; v++ {
		d[v] = Inf
	}
	d[0] = 0
	lanes := laneCount(pool, m, karpMinCols)
	if lanes <= 1 {
		for k := 1; k <= m; k++ {
			karpRelaxCols(s, m, k, 0, m)
		}
	} else {
		bar := NewBarrier(lanes)
		pool.Run(lanes, func(part int) {
			lo, hi := shardRange(m, lanes, part)
			for k := 1; k <= m; k++ {
				karpRelaxCols(s, m, k, lo, hi)
				bar.Wait()
			}
		})
	}

	// lambda* = min over v of max over k of (D[m][v]-D[k][v])/(m-k).
	lambda := math.Inf(1)
	dm := d[m*m : m*m+m]
	for v := 0; v < m; v++ {
		if math.IsInf(dm[v], 1) {
			continue
		}
		worst := math.Inf(-1)
		for k := 0; k < m; k++ {
			dkv := d[k*m+v]
			if math.IsInf(dkv, 1) {
				continue
			}
			if r := (dm[v] - dkv) / float64(m-k); r > worst {
				worst = r
			}
		}
		if worst < lambda {
			lambda = worst
		}
	}
	if math.IsInf(lambda, 1) {
		return MeanCycle{}, false
	}

	cycle := criticalCycleDense(s, m, comp, lambda)
	return MeanCycle{Mean: sign * lambda, Cycle: cycle}, true
}

// karpRelaxCols computes D[k][v] for v in [lo, hi) from row k-1. The
// min-reduction runs branchless on four independent accumulators so the
// loop is bound by add/min throughput, not by the latency chain of a
// single running minimum; min over NaN-free floats is associative and
// commutative, so the striped reduction is bit-identical to a sequential
// scan for any lane split.
func karpRelaxCols(s *KarpScratch, m, k, lo, hi int) {
	prev := s.d[(k-1)*m : k*m]
	cur := s.d[k*m : (k+1)*m]
	for v := lo; v < hi; v++ {
		row := s.wT.Row(v)[:len(prev)]
		b0, b1, b2, b3 := Inf, Inf, Inf, Inf
		u := 0
		for ; u+4 <= len(prev); u += 4 {
			b0 = min(b0, prev[u]+row[u])
			b1 = min(b1, prev[u+1]+row[u+1])
			b2 = min(b2, prev[u+2]+row[u+2])
			b3 = min(b3, prev[u+3]+row[u+3])
		}
		best := min(min(b0, b1), min(b2, b3))
		for ; u < len(prev); u++ {
			best = min(best, prev[u]+row[u])
		}
		cur[v] = best
	}
}

// criticalCycleDense finds a cycle whose adjusted mean equals lambda, as
// criticalCycle does: shortest-path potentials under reduced weights, then
// a DFS for a back edge in the tight subgraph. The cycle slice aliases the
// scratch.
func criticalCycleDense(s *KarpScratch, m int, comp []int, lambda float64) []int {
	scale := 1.0 + math.Abs(lambda)
	for v := 0; v < m; v++ {
		row := s.wT.Row(v)
		for u := 0; u < m; u++ {
			if u == v {
				continue
			}
			if a := math.Abs(row[u]); a > scale {
				scale = a
			}
		}
	}
	tol := 1e-9 * scale

	// Bellman-Ford from an implicit super-source (all potentials start 0);
	// reduced weights have no negative cycles, so m passes converge.
	pot := s.pot
	for i := range pot {
		pot[i] = 0
	}
	for pass := 0; pass < m; pass++ {
		changed := false
		for v := 0; v < m; v++ {
			row := s.wT.Row(v)
			pv := pot[v]
			for u, pu := range pot {
				if u == v {
					continue
				}
				if nd := pu + row[u] - lambda; nd < pv-tol {
					pv = nd
					changed = true
				}
			}
			pot[v] = pv
		}
		if !changed {
			break
		}
	}

	// Iterative DFS over the implicit tight subgraph: edge u -> v is tight
	// when its reduced weight closes the potential gap within tolerance.
	tight := func(u, v int) bool {
		return math.Abs(pot[u]+s.wT.At(v, u)-lambda-pot[v]) <= 2*tol
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	for i := 0; i < m; i++ {
		s.color[i] = white
		s.parent[i] = -1
	}
	for root := 0; root < m; root++ {
		if s.color[root] != white {
			continue
		}
		s.stackV = append(s.stackV[:0], root)
		s.stackI = append(s.stackI[:0], 0)
		s.color[root] = gray
		for len(s.stackV) > 0 {
			top := len(s.stackV) - 1
			v := s.stackV[top]
			advanced := false
			for s.stackI[top] < m {
				w := s.stackI[top]
				s.stackI[top]++
				if w == v || !tight(v, w) {
					continue
				}
				switch s.color[w] {
				case white:
					s.color[w] = gray
					s.parent[w] = v
					s.stackV = append(s.stackV, w)
					s.stackI = append(s.stackI, 0)
					advanced = true
				case gray:
					// Back edge v -> w: the cycle runs w -> ... -> v -> w
					// along parent pointers.
					s.cycle = s.cycle[:0]
					for u := v; u != w; u = s.parent[u] {
						s.cycle = append(s.cycle, u)
					}
					s.cycle = append(s.cycle, w)
					// Reverse and map to ms coordinates, closing the loop.
					for i, j := 0, len(s.cycle)-1; i < j; i, j = i+1, j-1 {
						s.cycle[i], s.cycle[j] = s.cycle[j], s.cycle[i]
					}
					for i, u := range s.cycle {
						s.cycle[i] = comp[u]
					}
					s.cycle = append(s.cycle, comp[w])
					return normalizeCycle(s.cycle)
				}
				if advanced {
					break
				}
			}
			if advanced {
				continue
			}
			s.color[v] = black
			s.stackV = s.stackV[:top]
			s.stackI = s.stackI[:top]
		}
	}
	return nil
}

// maxMeanCycleSubsetSlow is the fallback for subsets with absent edges:
// build the subset digraph and run the adjacency-list Karp, remapping the
// cycle to ms coordinates. Allocating, but only reachable on inputs that
// are not closure components.
func maxMeanCycleSubsetSlow(ms *Dense, comp []int, maximize bool) (MeanCycle, bool) {
	m := len(comp)
	g := NewDigraph(m)
	for a, p := range comp {
		for b, q := range comp {
			if a != b {
				g.MustAddEdge(a, b, ms.At(p, q))
			}
		}
	}
	var mc MeanCycle
	var ok bool
	if maximize {
		mc, ok = MaxMeanCycle(g)
	} else {
		mc, ok = MinMeanCycle(g)
	}
	if !ok {
		return MeanCycle{}, false
	}
	for i, v := range mc.Cycle {
		mc.Cycle[i] = comp[v]
	}
	return mc, true
}
