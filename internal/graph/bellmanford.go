package graph

import (
	"errors"
	"math"
)

// ErrNegativeCycle is returned by shortest-path routines when a negative
// weight cycle is reachable from the source (or present anywhere, for
// all-pairs routines).
var ErrNegativeCycle = errors.New("graph: negative weight cycle")

// ShortestPaths holds single-source shortest path results.
type ShortestPaths struct {
	Source int
	// Dist[v] is the shortest distance from Source to v; +Inf if
	// unreachable.
	Dist []float64
	// Parent[v] is the predecessor of v on a shortest path, or -1 for the
	// source and unreachable nodes.
	Parent []int
}

// Path reconstructs the node sequence of a shortest path from the source to
// v, inclusive. It returns nil if v is unreachable.
func (sp *ShortestPaths) Path(v int) []int {
	if v < 0 || v >= len(sp.Dist) || math.IsInf(sp.Dist[v], 1) {
		return nil
	}
	var rev []int
	for u := v; u != -1; u = sp.Parent[u] {
		rev = append(rev, u)
		if len(rev) > len(sp.Dist) {
			return nil // defensive: corrupted parent chain
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// BellmanFord computes single-source shortest paths from src, allowing
// negative edge weights. It returns ErrNegativeCycle if a negative cycle is
// reachable from src.
func BellmanFord(g *Digraph, src int) (*ShortestPaths, error) {
	n := g.N()
	if src < 0 || src >= n {
		return nil, errors.New("graph: source out of range")
	}
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[src] = 0

	// Standard Bellman-Ford with an early-exit when a full pass relaxes
	// nothing.
	for pass := 0; pass < n-1; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			if math.IsInf(du, 1) {
				continue
			}
			for _, e := range g.Out(u) {
				if nd := du + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					parent[e.To] = u
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// One more pass: any relaxation now implies a reachable negative cycle.
	// The tolerance is relative and generous (1e-9): it exists to catch
	// genuinely infeasible inputs, not accumulated floating-point dust from
	// upstream cycle-mean computations.
	for u := 0; u < n; u++ {
		du := dist[u]
		if math.IsInf(du, 1) {
			continue
		}
		for _, e := range g.Out(u) {
			if du+e.Weight < dist[e.To]-1e-9*(1+math.Abs(dist[e.To])) {
				return nil, ErrNegativeCycle
			}
		}
	}
	return &ShortestPaths{Source: src, Dist: dist, Parent: parent}, nil
}

// HasNegativeCycle reports whether g contains any negative-weight cycle.
// It runs Bellman-Ford from a virtual super-source connected to every node
// with weight 0, so cycles in every component are detected.
func HasNegativeCycle(g *Digraph) bool {
	n := g.N()
	dist := make([]float64, n) // all zero: equivalent to the super-source trick
	for pass := 0; pass < n; pass++ {
		changed := false
		for u := 0; u < n; u++ {
			du := dist[u]
			for _, e := range g.Out(u) {
				if nd := du + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					changed = true
				}
			}
		}
		if !changed {
			return false
		}
	}
	// Still changing after n passes over a graph with n nodes: negative cycle.
	for u := 0; u < n; u++ {
		du := dist[u]
		for _, e := range g.Out(u) {
			if du+e.Weight < dist[e.To]-1e-12 {
				return true
			}
		}
	}
	return false
}

// FindNegativeCycle returns the node sequence of some negative-weight cycle
// (first node repeated at the end), or nil if none exists.
func FindNegativeCycle(g *Digraph) []int {
	n := g.N()
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	var witness int = -1
	for pass := 0; pass < n; pass++ {
		witness = -1
		for u := 0; u < n; u++ {
			du := dist[u]
			for _, e := range g.Out(u) {
				if nd := du + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					parent[e.To] = u
					witness = e.To
				}
			}
		}
		if witness == -1 {
			return nil
		}
	}
	if witness == -1 {
		return nil
	}
	// Walk back n steps to land inside the cycle, then trace it.
	v := witness
	for i := 0; i < n; i++ {
		v = parent[v]
	}
	cycle := []int{v}
	for u := parent[v]; u != v; u = parent[u] {
		cycle = append(cycle, u)
	}
	cycle = append(cycle, v)
	// Reverse so the cycle follows edge direction.
	for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
		cycle[i], cycle[j] = cycle[j], cycle[i]
	}
	return cycle
}
