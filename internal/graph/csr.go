package graph

import (
	"fmt"
	"math"
)

// CSR is a directed graph in compressed-sparse-row form: one contiguous
// column-index and weight array indexed by a per-row pointer table. It is
// the sparse counterpart of Dense — the substrate of the sparse SHIFTS
// pipeline — and follows the same reuse discipline: a CSR can be Reset to
// a new size without reallocating once its buffers have warmed up, so hot
// loops that repeatedly assemble large sparse systems allocate nothing in
// steady state.
//
// Edges are staged with AddEdge and compiled by Build, which sorts rows
// and combines duplicate (u,v) edges by taking the minimum weight — the
// Theorem 5.6 intersection rule, matching the dense mls assembly. After
// Build, every row lists its columns in ascending order, so kernels that
// scan rows relax edges in exactly the order the dense kernels scan
// matrix rows restricted to finite entries.
//
// The zero value is an empty graph ready for Reset.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int
	wgt    []float64
	built  bool

	// Staged edges awaiting Build.
	eu, ev []int
	ew     []float64

	// Radix-sort scratch.
	cnt []int
	pv  []int
	pu  []int
	pw  []float64
}

// NewCSR returns an empty graph on n nodes.
func NewCSR(n int) *CSR {
	g := &CSR{}
	g.Reset(n)
	return g
}

// Reset clears the graph to n nodes and no edges, reusing capacity.
func (g *CSR) Reset(n int) {
	if n < 0 {
		n = 0
	}
	g.n = n
	g.eu = g.eu[:0]
	g.ev = g.ev[:0]
	g.ew = g.ew[:0]
	g.colIdx = g.colIdx[:0]
	g.wgt = g.wgt[:0]
	if cap(g.rowPtr) < n+1 {
		g.rowPtr = make([]int, n+1)
	}
	g.rowPtr = g.rowPtr[:n+1]
	for i := range g.rowPtr {
		g.rowPtr[i] = 0
	}
	g.built = true // an empty graph is trivially built
}

// N returns the node count.
func (g *CSR) N() int { return g.n }

// Nnz returns the number of compiled edges; call Build first.
func (g *CSR) Nnz() int { return len(g.colIdx) }

// Pending returns the number of staged edges not yet compiled (duplicates
// counted individually).
func (g *CSR) Pending() int { return len(g.eu) }

// AddEdge stages the directed edge u -> v with the given weight. Self
// loops and +Inf weights (absent constraints) are ignored, mirroring the
// dense matrix convention; NaN and -Inf are rejected.
func (g *CSR) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v || math.IsInf(w, 1) {
		return nil
	}
	if math.IsNaN(w) {
		return fmt.Errorf("graph: edge (%d,%d) weight is NaN", u, v)
	}
	if math.IsInf(w, -1) {
		return fmt.Errorf("graph: edge (%d,%d) weight is -Inf", u, v)
	}
	g.eu = append(g.eu, u)
	g.ev = append(g.ev, v)
	g.ew = append(g.ew, w)
	g.built = false
	return nil
}

// MustAddEdge is AddEdge panicking on error, for statically valid inputs.
func (g *CSR) MustAddEdge(u, v int, w float64) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// Build compiles the staged edges into CSR form: a stable two-pass radix
// sort by (row, column) in O(n + m), then a merge of duplicate (u,v)
// edges by minimum weight. Idempotent; kernels call it implicitly.
func (g *CSR) Build() {
	if g.built {
		return
	}
	n, m := g.n, len(g.eu)
	if cap(g.cnt) < n+1 {
		g.cnt = make([]int, n+1)
	}
	g.cnt = g.cnt[:n+1]
	g.pu = growIntsCap(g.pu, m)
	g.pv = growIntsCap(g.pv, m)
	g.pw = growFloatsCap(g.pw, m)

	// Pass 1: stable counting sort by column into the p* buffers.
	cnt := g.cnt
	for i := range cnt {
		cnt[i] = 0
	}
	for _, v := range g.ev {
		cnt[v]++
	}
	sum := 0
	for i := 0; i <= n; i++ {
		c := cnt[i]
		cnt[i] = sum
		sum += c
	}
	for i := 0; i < m; i++ {
		p := cnt[g.ev[i]]
		cnt[g.ev[i]]++
		g.pu[p] = g.eu[i]
		g.pv[p] = g.ev[i]
		g.pw[p] = g.ew[i]
	}

	// Pass 2: stable counting sort by row back into the staging buffers;
	// the result is sorted by (row, column).
	for i := range cnt {
		cnt[i] = 0
	}
	for _, u := range g.pu {
		cnt[u]++
	}
	sum = 0
	for i := 0; i <= n; i++ {
		c := cnt[i]
		cnt[i] = sum
		sum += c
	}
	for i := 0; i < m; i++ {
		p := cnt[g.pu[i]]
		cnt[g.pu[i]]++
		g.eu[p] = g.pu[i]
		g.ev[p] = g.pv[i]
		g.ew[p] = g.pw[i]
	}

	// Merge duplicates by minimum weight (order-independent) and emit the
	// final arrays plus row pointers.
	g.colIdx = growIntsCap(g.colIdx, m)[:0]
	g.wgt = growFloatsCap(g.wgt, m)[:0]
	row := 0
	g.rowPtr[0] = 0
	for i := 0; i < m; i++ {
		u, v, w := g.eu[i], g.ev[i], g.ew[i]
		for row < u {
			row++
			g.rowPtr[row] = len(g.colIdx)
		}
		if i > 0 && g.eu[i-1] == u && g.ev[i-1] == v {
			last := len(g.wgt) - 1
			g.wgt[last] = math.Min(g.wgt[last], w)
			continue
		}
		g.colIdx = append(g.colIdx, v)
		g.wgt = append(g.wgt, w)
	}
	for row < n {
		row++
		g.rowPtr[row] = len(g.colIdx)
	}
	g.built = true
}

// Row returns node u's out-edges as parallel column and weight slices,
// aliased into the CSR storage. Columns are ascending. Call Build first.
func (g *CSR) Row(u int) ([]int, []float64) {
	lo, hi := g.rowPtr[u], g.rowPtr[u+1]
	return g.colIdx[lo:hi:hi], g.wgt[lo:hi:hi]
}

// Degree returns node u's out-degree. Call Build first.
func (g *CSR) Degree(u int) int { return g.rowPtr[u+1] - g.rowPtr[u] }

// FromDense rebuilds g from the finite off-diagonal entries of d.
func (g *CSR) FromDense(d *Dense) {
	n := d.N()
	g.Reset(n)
	g.colIdx = g.colIdx[:0]
	g.wgt = g.wgt[:0]
	for u := 0; u < n; u++ {
		g.rowPtr[u] = len(g.colIdx)
		row := d.Row(u)
		for v, x := range row {
			if v == u || math.IsInf(x, 1) {
				continue
			}
			g.colIdx = append(g.colIdx, v)
			g.wgt = append(g.wgt, x)
		}
	}
	g.rowPtr[n] = len(g.colIdx)
	g.built = true
}

// TransposeInto writes the transpose (all edges reversed) into dst, rows
// sorted ascending. dst must not alias g. Call Build first.
func (g *CSR) TransposeInto(dst *CSR) {
	n, m := g.n, len(g.colIdx)
	dst.Reset(n)
	dst.colIdx = growIntsCap(dst.colIdx, m)
	dst.wgt = growFloatsCap(dst.wgt, m)
	for i := range dst.rowPtr {
		dst.rowPtr[i] = 0
	}
	for _, v := range g.colIdx {
		dst.rowPtr[v+1]++
	}
	for i := 0; i < n; i++ {
		dst.rowPtr[i+1] += dst.rowPtr[i]
	}
	if cap(dst.cnt) < n+1 {
		dst.cnt = make([]int, n+1)
	}
	dst.cnt = dst.cnt[:n+1]
	copy(dst.cnt, dst.rowPtr)
	for u := 0; u < n; u++ {
		for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
			v := g.colIdx[e]
			p := dst.cnt[v]
			dst.cnt[v]++
			dst.colIdx[p] = u
			dst.wgt[p] = g.wgt[e]
		}
	}
	dst.built = true
}

func growIntsCap(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloatsCap(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
