package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomCSRAndDense stages the same random edge set into a CSR and a Dense
// matrix (duplicates min-combined on both sides).
func randomCSRAndDense(rng *rand.Rand, n int, m int, lo, hi float64) (*CSR, *Dense) {
	g := NewCSR(n)
	d := NewDense(n)
	d.Fill(Inf)
	for e := 0; e < m; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		w := lo + (hi-lo)*rng.Float64()
		g.MustAddEdge(u, v, w)
		if u != v && w < d.At(u, v) {
			d.Set(u, v, w)
		}
	}
	g.Build()
	return g, d
}

func TestCSRBuildSortedDeduped(t *testing.T) {
	g := NewCSR(4)
	g.MustAddEdge(2, 1, 5)
	g.MustAddEdge(0, 3, 1)
	g.MustAddEdge(2, 1, 3) // duplicate, smaller wins
	g.MustAddEdge(2, 1, 7) // duplicate, larger loses
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(2, 2, 9)           // self loop ignored
	g.MustAddEdge(1, 0, math.Inf(1)) // +Inf ignored
	if err := g.AddEdge(0, 1, math.NaN()); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if err := g.AddEdge(0, 9, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	g.Build()
	if g.Nnz() != 3 {
		t.Fatalf("Nnz = %d, want 3", g.Nnz())
	}
	cols, wgts := g.Row(0)
	if len(cols) != 2 || cols[0] != 2 || cols[1] != 3 || wgts[0] != 2 || wgts[1] != 1 {
		t.Fatalf("row 0 = %v %v", cols, wgts)
	}
	cols, wgts = g.Row(2)
	if len(cols) != 1 || cols[0] != 1 || wgts[0] != 3 {
		t.Fatalf("row 2 = %v %v (duplicate min-combine)", cols, wgts)
	}
	if g.Degree(1) != 0 {
		t.Fatalf("degree(1) = %d", g.Degree(1))
	}
}

func TestCSRBuildIdempotentAndReset(t *testing.T) {
	g := NewCSR(3)
	g.MustAddEdge(0, 1, 1)
	g.Build()
	g.Build() // idempotent
	if g.Nnz() != 1 {
		t.Fatalf("Nnz = %d after double build", g.Nnz())
	}
	g.Reset(2)
	if g.Nnz() != 0 || g.N() != 2 || g.Pending() != 0 {
		t.Fatalf("Reset left state: nnz=%d n=%d pending=%d", g.Nnz(), g.N(), g.Pending())
	}
	g.MustAddEdge(1, 0, 4)
	g.Build()
	cols, _ := g.Row(1)
	if len(cols) != 1 || cols[0] != 0 {
		t.Fatalf("row 1 after reset = %v", cols)
	}
}

func TestCSRFromDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		g, d := randomCSRAndDense(rng, n, 3*n, -1, 2)
		var h CSR
		h.FromDense(d)
		if g.Nnz() != h.Nnz() {
			t.Fatalf("nnz mismatch: %d vs %d", g.Nnz(), h.Nnz())
		}
		for u := 0; u < n; u++ {
			gc, gw := g.Row(u)
			hc, hw := h.Row(u)
			if len(gc) != len(hc) {
				t.Fatalf("row %d length mismatch", u)
			}
			for i := range gc {
				if gc[i] != hc[i] || gw[i] != hw[i] {
					t.Fatalf("row %d entry %d: (%d,%v) vs (%d,%v)", u, i, gc[i], gw[i], hc[i], hw[i])
				}
			}
		}
	}
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		g, _ := randomCSRAndDense(rng, n, 2*n, 0, 1)
		var gt CSR
		g.TransposeInto(&gt)
		if gt.Nnz() != g.Nnz() {
			t.Fatalf("transpose nnz %d, want %d", gt.Nnz(), g.Nnz())
		}
		for u := 0; u < n; u++ {
			cols, wgts := g.Row(u)
			for e, v := range cols {
				tc, tw := gt.Row(v)
				found := false
				for i, back := range tc {
					if back == u && tw[i] == wgts[e] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("edge %d->%d missing from transpose", u, v)
				}
			}
			// ascending columns in the transpose
			tc, _ := gt.Row(u)
			for i := 1; i < len(tc); i++ {
				if tc[i-1] >= tc[i] {
					t.Fatalf("transpose row %d not ascending: %v", u, tc)
				}
			}
		}
	}
}

func TestBellmanFordCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		g, d := randomCSRAndDense(rng, n, 4*n, 0.01, 2)
		d.FillDiag(Inf)
		distC := make([]float64, n)
		parC := make([]int, n)
		distD := make([]float64, n)
		parD := make([]int, n)
		src := rng.Intn(n)
		if err := BellmanFordCSR(g, src, distC, parC); err != nil {
			t.Fatalf("BellmanFordCSR: %v", err)
		}
		if err := BellmanFordDense(d, src, distD, parD); err != nil {
			t.Fatalf("BellmanFordDense: %v", err)
		}
		for v := 0; v < n; v++ {
			if distC[v] != distD[v] { // bit-identical, same relaxation order
				t.Fatalf("dist[%d]: csr %v vs dense %v", v, distC[v], distD[v])
			}
		}
	}
}

func TestBellmanFordCSRNegativeCycle(t *testing.T) {
	g := NewCSR(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, -3)
	g.MustAddEdge(2, 0, 1)
	g.Build()
	dist := make([]float64, 3)
	par := make([]int, 3)
	if err := BellmanFordCSR(g, 0, dist, par); err == nil {
		t.Fatal("negative cycle not detected")
	}
}

func TestSCCCSRMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(15)
		g := NewCSR(n)
		dg := NewDigraph(n)
		for e := 0; e < 2*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, 1)
			dg.MustAddEdge(u, v, 1)
		}
		g.Build()
		var s SCCScratch
		nc := SCCCSR(g, &s)
		want := SCC(dg)
		if nc != len(want) {
			t.Fatalf("component count %d, want %d", nc, len(want))
		}
		// Same partition: nodes share a CompOf id iff they share a SCC set.
		wantOf := make([]int, n)
		for ci, comp := range want {
			for _, v := range comp {
				wantOf[v] = ci
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if (s.CompOf[a] == s.CompOf[b]) != (wantOf[a] == wantOf[b]) {
					t.Fatalf("partition mismatch at (%d,%d)", a, b)
				}
			}
		}
	}
}

func TestAllPairsJohnsonCSRMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(12)
		g := NewCSR(n)
		dg := NewDigraph(n)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := -0.2 + 2*rng.Float64()
			g.MustAddEdge(u, v, w)
			dg.MustAddEdge(u, v, w)
		}
		g.Build()
		want, errD := AllPairsJohnson(dg)
		var out CSR
		var s JohnsonScratch
		errC := AllPairsJohnsonCSR(g, &out, &s)
		if (errD != nil) != (errC != nil) {
			t.Fatalf("error mismatch: digraph %v vs csr %v", errD, errC)
		}
		if errD != nil {
			continue // both detected a negative cycle
		}
		got := NewMatrix(n, Inf)
		for u := 0; u < n; u++ {
			cols, wgts := out.Row(u)
			for e, v := range cols {
				got[u][v] = wgts[e]
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				gw, ww := got[u][v], want[u][v]
				if math.IsInf(gw, 1) != math.IsInf(ww, 1) {
					t.Fatalf("reachability mismatch at (%d,%d): %v vs %v", u, v, gw, ww)
				}
				if !math.IsInf(ww, 1) && math.Abs(gw-ww) > 1e-9 {
					t.Fatalf("dist (%d,%d): %v vs %v", u, v, gw, ww)
				}
			}
		}
	}
}

func TestMaxMeanCycleCSRMatchesDigraph(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(12)
		g := NewCSR(n)
		dg := NewDigraph(n)
		// No duplicate (u,v) pairs: CSR min-combines duplicates while the
		// digraph keeps parallel edges, and a max mean cycle may prefer
		// the heavier parallel edge.
		seen := make(map[[2]int]bool)
		for e := 0; e < 3*n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			w := -1 + 3*rng.Float64()
			g.MustAddEdge(u, v, w)
			dg.MustAddEdge(u, v, w)
		}
		g.Build()
		mcC, okC := MaxMeanCycleCSR(g, true)
		mcD, okD := MaxMeanCycle(dg)
		if okC != okD {
			t.Fatalf("ok mismatch: %v vs %v", okC, okD)
		}
		if !okC {
			continue
		}
		if math.Abs(mcC.Mean-mcD.Mean) > 1e-9 {
			t.Fatalf("mean %v vs %v", mcC.Mean, mcD.Mean)
		}
	}
}
