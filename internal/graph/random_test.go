package graph

import (
	"math/rand"
	"testing"
)

func TestSparseRingOfCliquesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := SparseRingOfCliques(rng, 5, 4, 0.1, 1)
	if g.N() != 20 {
		t.Fatalf("n = %d, want 20", g.N())
	}
	// 5 cliques of 4 nodes: 4*3 intra edges each, plus 5 bidirectional bridges.
	want := 5*4*3 + 2*5
	if g.Nnz() != want {
		t.Fatalf("nnz = %d, want %d", g.Nnz(), want)
	}
	var s SCCScratch
	if nc := SCCCSR(g, &s); nc != 1 {
		t.Fatalf("ring of cliques split into %d components", nc)
	}
	// Weights stay in range.
	for u := 0; u < g.N(); u++ {
		_, wgts := g.Row(u)
		for _, w := range wgts {
			if w < 0.1 || w >= 1 {
				t.Fatalf("weight %v out of [0.1, 1)", w)
			}
		}
	}
}

func TestSparseBoundedDegreeConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 97, 500} {
		g := SparseBoundedDegree(rng, n, 4, 0, 1)
		if g.N() != n {
			t.Fatalf("n = %d, want %d", g.N(), n)
		}
		var s SCCScratch
		if nc := SCCCSR(g, &s); n > 0 && nc != 1 {
			t.Fatalf("n=%d: %d components, want strongly connected", n, nc)
		}
		// Degree stays bounded: ring (2) plus at most 2*ceil((deg-2)/2)
		// chords initiated per node, plus incoming chords — spot-check a
		// generous cap rather than an exact count.
		for u := 0; u < n; u++ {
			if d := g.Degree(u); d > 4+8 {
				t.Fatalf("degree(%d) = %d, unexpectedly large", u, d)
			}
		}
	}
}

func TestSparseRandomGeometricSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	g := SparseRandomGeometric(rng, n, geometricRadius(n), 12, 0, 1)
	if g.N() != n {
		t.Fatalf("n = %d", g.N())
	}
	if g.Nnz() == 0 {
		t.Fatal("no edges generated")
	}
	// maxDeg cap of 12 holds and the graph is far from dense.
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > 12 {
			t.Fatalf("degree(%d) = %d > 12", u, d)
		}
	}
	if g.Nnz() > 12*n {
		t.Fatalf("nnz = %d exceeds the degree budget", g.Nnz())
	}
	// Symmetric structure: u->v implies v->u.
	for u := 0; u < n; u++ {
		cols, _ := g.Row(u)
		for _, v := range cols {
			back, _ := g.Row(v)
			found := false
			for _, x := range back {
				if x == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d has no reverse", u, v)
			}
		}
	}
}

func TestRandomSparseDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, topo := range []SparseTopology{TopologyRingOfCliques, TopologyGeometric, TopologyBoundedDegree} {
		g := RandomSparse(rng, topo, 300, 0.1, 2)
		if g.N() == 0 || g.Nnz() == 0 {
			t.Fatalf("topology %d produced an empty graph", topo)
		}
		if g.N() < 300-31 || g.N() > 300+31 {
			t.Fatalf("topology %d: n = %d, want about 300", topo, g.N())
		}
	}
}

func TestRandomSparseDeterministic(t *testing.T) {
	a := RandomSparse(rand.New(rand.NewSource(9)), TopologyBoundedDegree, 200, 0, 1)
	b := RandomSparse(rand.New(rand.NewSource(9)), TopologyBoundedDegree, 200, 0, 1)
	if a.Nnz() != b.Nnz() {
		t.Fatalf("nnz differs: %d vs %d", a.Nnz(), b.Nnz())
	}
	for u := 0; u < a.N(); u++ {
		ac, aw := a.Row(u)
		bc, bw := b.Row(u)
		for i := range ac {
			if ac[i] != bc[i] || aw[i] != bw[i] {
				t.Fatalf("row %d differs between identical seeds", u)
			}
		}
	}
}
