package graph

import "math"

// SCCScratch holds the reusable state of SCCDense. The zero value is
// ready; buffers grow to the largest n seen and are then reused.
type SCCScratch struct {
	index   []int
	low     []int
	onStack []bool
	stack   []int // Tarjan stack
	callV   []int // DFS call stack: node
	callE   []int // DFS call stack: next column to scan
	// CompOf[v] is the component id of node v after SCCDense; ids are
	// assigned in Tarjan completion order (reverse topological order of
	// the condensation), matching the emission order of SCC.
	CompOf []int
}

func (s *SCCScratch) reset(n int) {
	if cap(s.index) < n {
		s.index = make([]int, n)
		s.low = make([]int, n)
		s.onStack = make([]bool, n)
		s.stack = make([]int, 0, n)
		s.callV = make([]int, 0, n)
		s.callE = make([]int, 0, n)
		s.CompOf = make([]int, n)
	}
	s.index = s.index[:n]
	s.low = s.low[:n]
	s.onStack = s.onStack[:n]
	s.stack = s.stack[:0]
	s.callV = s.callV[:0]
	s.callE = s.callE[:0]
	s.CompOf = s.CompOf[:n]
	for i := 0; i < n; i++ {
		s.index[i] = -1
		s.onStack[i] = false
	}
}

// SCCDense computes the strongly connected components of the digraph whose
// edges are the finite off-diagonal entries of w (the adjacency implied by
// a shortest-path closure or any weight matrix with +Inf absences). It
// fills s.CompOf and returns the number of components, allocating nothing
// once the scratch has warmed up.
func SCCDense(w *Dense, s *SCCScratch) int {
	n := w.n
	s.reset(n)
	counter := 0
	comps := 0

	for root := 0; root < n; root++ {
		if s.index[root] != -1 {
			continue
		}
		s.callV = append(s.callV, root)
		s.callE = append(s.callE, 0)
		s.index[root] = counter
		s.low[root] = counter
		counter++
		s.stack = append(s.stack, root)
		s.onStack[root] = true

		for len(s.callV) > 0 {
			top := len(s.callV) - 1
			v := s.callV[top]
			row := w.data[v*n : v*n+n]
			advanced := false
			for s.callE[top] < n {
				j := s.callE[top]
				s.callE[top]++
				if j == v || math.IsInf(row[j], 1) {
					continue
				}
				if s.index[j] == -1 {
					s.index[j] = counter
					s.low[j] = counter
					counter++
					s.stack = append(s.stack, j)
					s.onStack[j] = true
					s.callV = append(s.callV, j)
					s.callE = append(s.callE, 0)
					advanced = true
					break
				}
				if s.onStack[j] && s.index[j] < s.low[v] {
					s.low[v] = s.index[j]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			s.callV = s.callV[:top]
			s.callE = s.callE[:top]
			if top > 0 {
				parent := s.callV[top-1]
				if s.low[v] < s.low[parent] {
					s.low[parent] = s.low[v]
				}
			}
			if s.low[v] == s.index[v] {
				for {
					u := s.stack[len(s.stack)-1]
					s.stack = s.stack[:len(s.stack)-1]
					s.onStack[u] = false
					s.CompOf[u] = comps
					if u == v {
						break
					}
				}
				comps++
			}
		}
	}
	return comps
}
