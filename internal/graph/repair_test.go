package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomFeasibleDense builds a random n x n local-shift-like weight matrix
// with density p: weights are x_q - x_p + noise for hidden offsets x, so
// every cycle has non-negative total weight (feasible, as estimates from a
// real execution always are). Absent edges are +Inf; the diagonal is 0.
func randomFeasibleDense(rng *rand.Rand, n int, p float64) *Dense {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	d := NewDense(n)
	d.Fill(Inf)
	d.FillDiag(0)
	for i := 0; i < n; i++ {
		// A Hamiltonian-ish ring keeps most instances connected.
		j := (i + 1) % n
		d.Set(i, j, x[j]-x[i]+rng.Float64())
		d.Set(j, i, x[i]-x[j]+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() >= p {
				continue
			}
			d.Set(i, j, x[j]-x[i]+rng.Float64())
		}
	}
	return d
}

// closureOf returns the Floyd-Warshall closure of a copy of w.
func closureOf(t *testing.T, w *Dense) *Dense {
	t.Helper()
	ms := &Dense{}
	ms.CopyFrom(w)
	if err := FloydWarshallDense(ms, nil); err != nil {
		t.Fatalf("closure: %v", err)
	}
	return ms
}

// TestClosureEdgeInertPreservesBits tightens random edges and checks the
// certification contract: whenever ClosureEdgeInert accepts, a fresh batch
// closure of the tightened weights is bit-identical to the cached one.
func TestClosureEdgeInertPreservesBits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inertSeen := 0
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10)
		w := randomFeasibleDense(rng, n, 0.4)
		ms := closureOf(t, w)

		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || math.IsInf(w.At(u, v), 1) {
			continue
		}
		// Tighten by a random amount, keeping the edge pair feasible.
		slack := w.At(u, v) + ms.At(v, u) // >= 0 by feasibility
		nw := w.At(u, v) - rng.Float64()*slack*0.999
		if !ClosureEdgeInert(ms, u, v, nw) {
			continue
		}
		inertSeen++
		w.Set(u, v, nw)
		fresh := closureOf(t, w)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := ms.At(i, j), fresh.At(i, j)
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("trial %d: certified inert edge (%d->%d, %v) changed closure at (%d,%d): %v -> %v",
						trial, u, v, nw, i, j, a, b)
				}
			}
		}
	}
	if inertSeen == 0 {
		t.Fatal("no inert tightenings generated; test is vacuous")
	}
}

// TestClosureDecreaseEdge tightens random edges and checks the wavefront
// repair against a fresh closure, entry by entry within tolerance, and
// that the touched list covers exactly the changed entries.
func TestClosureDecreaseEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	changedSeen := 0
	rows := make([]int, 0, 16)
	cols := make([]int, 0, 16)
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10)
		w := randomFeasibleDense(rng, n, 0.4)
		ms := closureOf(t, w)

		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || math.IsInf(w.At(u, v), 1) {
			continue
		}
		slack := w.At(u, v) + ms.At(v, u)
		nw := w.At(u, v) - rng.Float64()*slack*0.999
		if ms.At(v, u)+nw < 0 {
			continue // precondition: no negative cycle through the edge
		}
		before := &Dense{}
		before.CopyFrom(ms)
		touched := ClosureDecreaseEdge(ms, u, v, nw, rows, cols, nil)
		if len(touched) > 0 {
			changedSeen++
		}

		w.Set(u, v, nw)
		fresh := closureOf(t, w)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				got, want := ms.At(i, j), fresh.At(i, j)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("trial %d: repaired (%d,%d) = %v, fresh closure %v (edge %d->%d to %v)",
						trial, i, j, got, want, u, v, nw)
				}
			}
		}
		// touched must list exactly the entries that moved.
		moved := make(map[int32]bool)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if ms.At(i, j) != before.At(i, j) {
					moved[int32(i*n+j)] = true
				}
			}
		}
		if len(moved) != len(touched) {
			t.Fatalf("trial %d: %d entries moved, %d reported touched", trial, len(moved), len(touched))
		}
		for _, idx := range touched {
			if !moved[idx] {
				t.Fatalf("trial %d: touched index %d did not move", trial, idx)
			}
		}
	}
	if changedSeen == 0 {
		t.Fatal("no effective tightenings generated; test is vacuous")
	}
}

// TestClosureDecreaseEdgeNoOps covers the degenerate inputs: self edges,
// +Inf weights, and non-improving tightenings must leave the closure and
// the touched list untouched.
func TestClosureDecreaseEdgeNoOps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := randomFeasibleDense(rng, 6, 0.5)
	ms := closureOf(t, w)
	before := &Dense{}
	before.CopyFrom(ms)
	rows := make([]int, 0, 6)
	cols := make([]int, 0, 6)

	for _, tc := range []struct {
		name string
		u, v int
		w    float64
	}{
		{"self", 2, 2, -1},
		{"inf", 0, 1, Inf},
		{"loose", 0, 1, ms.At(0, 1) + 1},
	} {
		if touched := ClosureDecreaseEdge(ms, tc.u, tc.v, tc.w, rows, cols, nil); len(touched) != 0 {
			t.Fatalf("%s: %d entries touched, want 0", tc.name, len(touched))
		}
		for i := 0; i < ms.N(); i++ {
			for j := 0; j < ms.N(); j++ {
				if ms.At(i, j) != before.At(i, j) {
					t.Fatalf("%s: closure moved at (%d,%d)", tc.name, i, j)
				}
			}
		}
		if !ClosureEdgeInert(ms, tc.u, tc.v, tc.w) && tc.name != "loose" {
			t.Fatalf("%s: expected inert certification", tc.name)
		}
	}
}
