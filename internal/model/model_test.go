package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Execution {
	t.Helper()
	e, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return e
}

// twoProcExec builds the canonical 2-processor execution used across tests:
// p0 starts at s0, p1 at s1, one message each way with the given real
// delays, both sent once both processors have started (so receipt cannot
// precede the receiver's start, which would be inadmissible).
func twoProcExec(t *testing.T, s0, s1, d01, d10 float64) *Execution {
	t.Helper()
	b := NewBuilder([]float64{s0, s1})
	sendAt := math.Max(s0, s1) + 1
	if _, err := b.AddMessageDelay(0, 1, sendAt, d01); err != nil {
		t.Fatalf("AddMessageDelay: %v", err)
	}
	if _, err := b.AddMessageDelay(1, 0, sendAt, d10); err != nil {
		t.Fatalf("AddMessageDelay: %v", err)
	}
	return mustBuild(t, b)
}

func TestHistoryValidate(t *testing.T) {
	tests := []struct {
		name    string
		hist    History
		wantErr bool
	}{
		{
			name: "valid",
			hist: History{Steps: []Step{
				{Clock: 0, Event: Event{Kind: KindStart}},
				{Clock: 2, Event: Event{Kind: KindSend, Peer: 1, Msg: 1}},
			}},
		},
		{
			name:    "empty",
			hist:    History{},
			wantErr: true,
		},
		{
			name: "missing start",
			hist: History{Steps: []Step{
				{Clock: 0, Event: Event{Kind: KindSend, Peer: 1, Msg: 1}},
			}},
			wantErr: true,
		},
		{
			name: "start not at clock zero",
			hist: History{Steps: []Step{
				{Clock: 1, Event: Event{Kind: KindStart}},
			}},
			wantErr: true,
		},
		{
			name: "second start",
			hist: History{Steps: []Step{
				{Clock: 0, Event: Event{Kind: KindStart}},
				{Clock: 1, Event: Event{Kind: KindStart}},
			}},
			wantErr: true,
		},
		{
			name: "out of order",
			hist: History{Steps: []Step{
				{Clock: 0, Event: Event{Kind: KindStart}},
				{Clock: 2, Event: Event{Kind: KindSend, Msg: 1}},
				{Clock: 1, Event: Event{Kind: KindSend, Msg: 2}},
			}},
			wantErr: true,
		},
		{
			name: "nan clock",
			hist: History{Steps: []Step{
				{Clock: 0, Event: Event{Kind: KindStart}},
				{Clock: math.NaN(), Event: Event{Kind: KindSend, Msg: 1}},
			}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.hist.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

// TestShiftLemma41 checks Lemma 4.1: shift(pi, s) is a history of p with
// start time S - s and an unchanged view.
func TestShiftLemma41(t *testing.T) {
	e := twoProcExec(t, 10, 20, 0.5, 0.7)
	h := e.Histories[0]
	for _, s := range []float64{0, 1.5, -3, 100} {
		sh := h.Shift(s)
		if sh.Start != h.Start-s {
			t.Errorf("Shift(%v).Start = %v, want %v", s, sh.Start, h.Start-s)
		}
		if err := sh.Validate(); err != nil {
			t.Errorf("Shift(%v) not a valid history: %v", s, err)
		}
		if !sh.View().Equal(h.View()) {
			t.Errorf("Shift(%v) changed the view", s)
		}
	}
}

// TestShiftEquivalence checks that shifted executions are equivalent to the
// original (Section 4.1) and that shift composes additively.
func TestShiftEquivalence(t *testing.T) {
	e := twoProcExec(t, 0, 5, 1, 2)
	sh, err := e.Shift([]float64{2, -1})
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	if !Equivalent(e, sh) {
		t.Error("shifted execution not equivalent to original")
	}
	if got := sh.Histories[0].Start; got != -2 {
		t.Errorf("p0 start = %v, want -2", got)
	}
	if got := sh.Histories[1].Start; got != 6 {
		t.Errorf("p1 start = %v, want 6", got)
	}
	sh2, err := sh.Shift([]float64{-2, 1})
	if err != nil {
		t.Fatalf("Shift back: %v", err)
	}
	for p := range e.Histories {
		if sh2.Histories[p].Start != e.Histories[p].Start {
			t.Errorf("p%d start after round trip = %v, want %v", p, sh2.Histories[p].Start, e.Histories[p].Start)
		}
	}
}

func TestShiftBadVector(t *testing.T) {
	e := twoProcExec(t, 0, 0, 1, 1)
	if _, err := e.Shift([]float64{1}); err == nil {
		t.Error("Shift(short vector) error = nil, want non-nil")
	}
}

// TestShiftDelayChange checks the delay arithmetic of Section 6: shifting q
// by s decreases delays into q by s and increases delays out of q by s.
func TestShiftDelayChange(t *testing.T) {
	e := twoProcExec(t, 3, 8, 1.0, 2.0)
	msgs, err := e.Messages()
	if err != nil {
		t.Fatalf("Messages: %v", err)
	}
	const s = 0.25
	sh, err := e.Shift([]float64{0, s})
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	shMsgs, err := sh.Messages()
	if err != nil {
		t.Fatalf("Messages(shifted): %v", err)
	}
	for i, m := range msgs {
		d0 := m.Delay(e)
		d1 := shMsgs[i].Delay(sh)
		var want float64
		switch {
		case m.To == 1: // into q: receive happens s earlier
			want = d0 - s
		case m.From == 1: // out of q: send happens s earlier
			want = d0 + s
		default:
			want = d0
		}
		if math.Abs(d1-want) > 1e-12 {
			t.Errorf("msg %d (p%d->p%d): shifted delay = %v, want %v", m.ID, m.From, m.To, d1, want)
		}
	}
}

// TestEstimatedDelayLemma61 checks d~(m) = d(m) + S_p - S_q and that it is
// view-computable (invariant under shifts).
func TestEstimatedDelayLemma61(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s0, s1 := rng.Float64()*100-50, rng.Float64()*100-50
		d01, d10 := rng.Float64()*5, rng.Float64()*5
		e := twoProcExec(t, s0, s1, d01, d10)
		msgs, err := e.Messages()
		if err != nil {
			t.Fatalf("Messages: %v", err)
		}
		for _, m := range msgs {
			want := m.Delay(e) + e.Histories[m.From].Start - e.Histories[m.To].Start
			if got := m.EstimatedDelay(); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: d~ = %v, want %v", trial, got, want)
			}
		}
		// Shift arbitrarily: estimated delays must be unchanged.
		sh, err := e.Shift([]float64{rng.Float64() * 10, rng.Float64() * 10})
		if err != nil {
			t.Fatalf("Shift: %v", err)
		}
		shMsgs, err := sh.Messages()
		if err != nil {
			t.Fatalf("Messages(shifted): %v", err)
		}
		for i := range msgs {
			if msgs[i].EstimatedDelay() != shMsgs[i].EstimatedDelay() {
				t.Fatalf("trial %d: estimated delay changed under shift", trial)
			}
		}
	}
}

func TestMessagesCorrespondenceErrors(t *testing.T) {
	// Received but never sent.
	e := NewExecution([]float64{0, 0})
	e.Histories[1].Steps = append(e.Histories[1].Steps, Step{
		Clock: 1, Event: Event{Kind: KindRecv, Peer: 0, Msg: 7},
	})
	if _, err := e.Messages(); err == nil {
		t.Error("orphan receive: error = nil, want non-nil")
	}

	// Sent twice.
	e2 := NewExecution([]float64{0, 0})
	e2.Histories[0].Steps = append(e2.Histories[0].Steps,
		Step{Clock: 1, Event: Event{Kind: KindSend, Peer: 1, Msg: 7}},
		Step{Clock: 2, Event: Event{Kind: KindSend, Peer: 1, Msg: 7}},
	)
	if _, err := e2.Messages(); err == nil {
		t.Error("duplicate send: error = nil, want non-nil")
	}

	// Delivered twice.
	e3 := NewExecution([]float64{0, 0})
	e3.Histories[0].Steps = append(e3.Histories[0].Steps,
		Step{Clock: 1, Event: Event{Kind: KindSend, Peer: 1, Msg: 7}})
	e3.Histories[1].Steps = append(e3.Histories[1].Steps,
		Step{Clock: 2, Event: Event{Kind: KindRecv, Peer: 0, Msg: 7}},
		Step{Clock: 3, Event: Event{Kind: KindRecv, Peer: 0, Msg: 7}},
	)
	if _, err := e3.Messages(); err == nil {
		t.Error("duplicate delivery: error = nil, want non-nil")
	}

	// Endpoint mismatch.
	e4 := NewExecution([]float64{0, 0, 0})
	e4.Histories[0].Steps = append(e4.Histories[0].Steps,
		Step{Clock: 1, Event: Event{Kind: KindSend, Peer: 1, Msg: 7}})
	e4.Histories[2].Steps = append(e4.Histories[2].Steps,
		Step{Clock: 2, Event: Event{Kind: KindRecv, Peer: 0, Msg: 7}})
	if _, err := e4.Messages(); err == nil {
		t.Error("endpoint mismatch: error = nil, want non-nil")
	}
}

func TestMessagesUndeliveredOK(t *testing.T) {
	e := NewExecution([]float64{0, 0})
	e.Histories[0].Steps = append(e.Histories[0].Steps,
		Step{Clock: 1, Event: Event{Kind: KindSend, Peer: 1, Msg: 7}})
	msgs, err := e.Messages()
	if err != nil {
		t.Fatalf("Messages: %v", err)
	}
	if len(msgs) != 0 {
		t.Errorf("len(msgs) = %d, want 0 (in-flight message)", len(msgs))
	}
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder([]float64{0, 0})
	if _, err := b.AddMessage(0, 0, 1, 2); err == nil {
		t.Error("self message: error = nil, want non-nil")
	}
	if _, err := b.AddMessage(0, 5, 1, 2); err == nil {
		t.Error("receiver out of range: error = nil, want non-nil")
	}
	if _, err := b.AddMessage(-1, 0, 1, 2); err == nil {
		t.Error("sender out of range: error = nil, want non-nil")
	}
}

func TestBuilderOrdersSteps(t *testing.T) {
	b := NewBuilder([]float64{0, 0})
	// Add messages with decreasing send clocks; Build must sort.
	for i := 4; i >= 1; i-- {
		if _, err := b.AddMessage(0, 1, float64(i), float64(i)+0.5); err != nil {
			t.Fatalf("AddMessage: %v", err)
		}
	}
	e := mustBuild(t, b)
	steps := e.Histories[0].Steps
	for i := 1; i < len(steps); i++ {
		if i > 1 && steps[i].Clock < steps[i-1].Clock {
			t.Fatalf("steps not sorted: %v", steps)
		}
	}
}

// TestViewPropertyQuick: a shift by any finite vector preserves views and
// changes starts by exactly the shift (property-based, testing/quick).
func TestViewPropertyQuick(t *testing.T) {
	f := func(s0, s1 int8, shift0, shift1 int8) bool {
		e := twoProcExec(t, float64(s0), float64(s1), 1.5, 2.5)
		sh, err := e.Shift([]float64{float64(shift0), float64(shift1)})
		if err != nil {
			return false
		}
		return Equivalent(e, sh) &&
			sh.Histories[0].Start == float64(s0)-float64(shift0) &&
			sh.Histories[1].Start == float64(s1)-float64(shift1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindStart, "start"},
		{KindSend, "send"},
		{KindRecv, "recv"},
		{KindTimerSet, "timer-set"},
		{KindTimer, "timer"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestExecutionValidate(t *testing.T) {
	e := twoProcExec(t, 0, 0, 1, 1)
	if err := e.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestBuilderTimers(t *testing.T) {
	b := NewBuilder([]float64{0})
	if err := b.AddTimer(0, 1, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTimer(0, 2, 5, false); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTimer(0, 3, 1, true); err == nil {
		t.Error("timer for the past accepted")
	}
	if err := b.AddTimer(5, 1, 2, true); err == nil {
		t.Error("out-of-range processor accepted")
	}
	e, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := e.ValidateTimers(); err != nil {
		t.Errorf("ValidateTimers: %v", err)
	}
}

func TestValidateTimersCatchesViolations(t *testing.T) {
	// Timer fired without being set.
	e := NewExecution([]float64{0})
	e.Histories[0].Steps = append(e.Histories[0].Steps,
		Step{Clock: 2, Event: Event{Kind: KindTimer, At: 2}})
	if err := e.ValidateTimers(); err == nil {
		t.Error("unset timer accepted")
	}

	// Timer fires at the wrong clock.
	e2 := NewExecution([]float64{0})
	e2.Histories[0].Steps = append(e2.Histories[0].Steps,
		Step{Clock: 1, Event: Event{Kind: KindTimerSet, At: 2}},
		Step{Clock: 3, Event: Event{Kind: KindTimer, At: 2}})
	if err := e2.ValidateTimers(); err == nil {
		t.Error("late timer accepted")
	}

	// Timer set for the past.
	e3 := NewExecution([]float64{0})
	e3.Histories[0].Steps = append(e3.Histories[0].Steps,
		Step{Clock: 5, Event: Event{Kind: KindTimerSet, At: 2}})
	if err := e3.ValidateTimers(); err == nil {
		t.Error("past timer-set accepted")
	}

	// Well-formed sequence passes.
	e4 := NewExecution([]float64{0})
	e4.Histories[0].Steps = append(e4.Histories[0].Steps,
		Step{Clock: 1, Event: Event{Kind: KindTimerSet, At: 2}},
		Step{Clock: 2, Event: Event{Kind: KindTimer, At: 2}})
	if err := e4.ValidateTimers(); err != nil {
		t.Errorf("valid timers rejected: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	b := NewBuilder([]float64{1, 2, 3})
	if b.N() != 3 {
		t.Errorf("Builder.N = %d, want 3", b.N())
	}
	e := twoProcExec(t, 1.5, 2.5, 1, 1)
	starts := e.Starts()
	if starts[0] != 1.5 || starts[1] != 2.5 {
		t.Errorf("Starts = %v", starts)
	}
	views := e.Views()
	if len(views) != 2 || views[0].Proc != 0 || len(views[0].Steps) == 0 {
		t.Errorf("Views = %+v", views)
	}
	h := e.Histories[0]
	if got := h.RealTime(0); got != h.Start {
		t.Errorf("RealTime(start) = %v, want %v", got, h.Start)
	}
}

func TestViewEqualBranches(t *testing.T) {
	e := twoProcExec(t, 0, 0, 1, 1)
	v0, v1 := e.Histories[0].View(), e.Histories[1].View()
	if v0.Equal(v1) {
		t.Error("views of different processors reported equal")
	}
	short := View{Proc: 0, Steps: v0.Steps[:1]}
	if v0.Equal(short) {
		t.Error("different-length views reported equal")
	}
	modified := View{Proc: 0, Steps: append([]Step(nil), v0.Steps...)}
	modified.Steps[1].Clock += 1
	if v0.Equal(modified) {
		t.Error("step-modified views reported equal")
	}
}

func TestEquivalentSizeMismatch(t *testing.T) {
	a := NewExecution([]float64{0})
	b := NewExecution([]float64{0, 0})
	if Equivalent(a, b) {
		t.Error("different-size executions reported equivalent")
	}
}

func TestValidateInvalidDelay(t *testing.T) {
	// An infinite start time makes a real delay infinite even though the
	// clock values are finite.
	e := NewExecution([]float64{0, math.Inf(1)})
	e.Histories[0].Steps = append(e.Histories[0].Steps,
		Step{Clock: 1, Event: Event{Kind: KindSend, Peer: 1, Msg: 1}})
	e.Histories[1].Steps = append(e.Histories[1].Steps,
		Step{Clock: 2, Event: Event{Kind: KindRecv, Peer: 0, Msg: 1}})
	if err := e.Validate(); err == nil {
		t.Error("infinite delay accepted")
	}
}
