// Package model implements the formal model of computation of Attiya,
// Herzberg and Rajsbaum (PODC'93), Section 2: processors with drift-free
// clocks, events, steps, histories, views, executions, the shift operator,
// and execution equivalence.
//
// A processor's clock shows t - S at real time t, where S is the real time
// of its start event. A history therefore consists of a start time S and a
// sequence of steps stamped with clock times; the real time of a step is
// S + clock. Shifting a history by s (Lemma 4.1) simply replaces S with
// S - s, leaving all clock times — and hence the view — unchanged.
package model

import (
	"fmt"
	"math"
	"sort"
)

// ProcID identifies a processor (0-based dense index).
type ProcID int

// MsgID uniquely identifies a message within an execution.
type MsgID int64

// Kind enumerates event kinds at a processor.
type Kind int

// Event kinds. Start, Recv and Timer are interrupt events; Send and
// TimerSet appear in the output of the transition function.
const (
	KindStart Kind = iota + 1
	KindSend
	KindRecv
	KindTimerSet
	KindTimer
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindTimerSet:
		return "timer-set"
	case KindTimer:
		return "timer"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is a single event at a processor. Peer and Msg are meaningful for
// send/receive events; At is meaningful for timer-set/timer events and holds
// the clock time the timer is (or was) set for.
type Event struct {
	Kind Kind
	Peer ProcID
	Msg  MsgID
	At   float64
}

// Step is an event together with the clock time at which it occurred.
// (The paper's step tuple also carries automaton states; states are
// irrelevant to shifts and precision, so they are elided here.)
type Step struct {
	Clock float64
	Event Event
}

// History is the activity of one processor in an execution: its start real
// time and its steps ordered by clock time. Steps[0] must be the start event
// at clock 0 for a well-formed history.
type History struct {
	Proc  ProcID
	Start float64 // S_pi: real time of the start event
	Steps []Step
}

// RealTime returns the real time at which step i occurred.
func (h *History) RealTime(i int) float64 { return h.Start + h.Steps[i].Clock }

// Validate checks the well-formedness conditions of Section 2.1 that are
// expressible without the automaton: a unique leading start event at clock 0
// and non-decreasing clock times.
func (h *History) Validate() error {
	if len(h.Steps) == 0 {
		return fmt.Errorf("model: history of p%d has no steps", h.Proc)
	}
	if h.Steps[0].Event.Kind != KindStart {
		return fmt.Errorf("model: history of p%d does not begin with a start event", h.Proc)
	}
	if h.Steps[0].Clock != 0 {
		return fmt.Errorf("model: history of p%d starts at clock %v, want 0", h.Proc, h.Steps[0].Clock)
	}
	for i, s := range h.Steps {
		if i > 0 && s.Event.Kind == KindStart {
			return fmt.Errorf("model: history of p%d has a second start event at step %d", h.Proc, i)
		}
		if math.IsNaN(s.Clock) || math.IsInf(s.Clock, 0) {
			return fmt.Errorf("model: history of p%d step %d has invalid clock %v", h.Proc, i, s.Clock)
		}
		if i > 0 && s.Clock < h.Steps[i-1].Clock {
			return fmt.Errorf("model: history of p%d steps out of order at %d (%v < %v)",
				h.Proc, i, s.Clock, h.Steps[i-1].Clock)
		}
	}
	return nil
}

// Shift returns shift(h, s): the same steps, executed s earlier in real
// time. Per Lemma 4.1 the result is a history with start time Start - s and
// an identical view.
func (h *History) Shift(s float64) *History {
	return &History{
		Proc:  h.Proc,
		Start: h.Start - s,
		Steps: append([]Step(nil), h.Steps...),
	}
}

// View is the observable part of a history: the step sequence with clock
// times but no real times (Section 2.1). Two histories are equivalent iff
// their views are equal.
type View struct {
	Proc  ProcID
	Steps []Step
}

// View projects the history onto its view.
func (h *History) View() View {
	return View{Proc: h.Proc, Steps: append([]Step(nil), h.Steps...)}
}

// Equal reports whether two views are identical.
func (v View) Equal(o View) bool {
	if v.Proc != o.Proc || len(v.Steps) != len(o.Steps) {
		return false
	}
	for i := range v.Steps {
		if v.Steps[i] != o.Steps[i] {
			return false
		}
	}
	return true
}

// Execution is a set of histories, one per processor, with an implicit
// message correspondence given by shared MsgIDs: every message received must
// have been sent exactly once, with matching endpoints.
type Execution struct {
	Histories []*History // indexed by ProcID
}

// NewExecution allocates an execution skeleton for n processors with the
// given start times; each history initially holds only its start event.
func NewExecution(starts []float64) *Execution {
	e := &Execution{Histories: make([]*History, len(starts))}
	for p, s := range starts {
		e.Histories[p] = &History{
			Proc:  ProcID(p),
			Start: s,
			Steps: []Step{{Clock: 0, Event: Event{Kind: KindStart}}},
		}
	}
	return e
}

// N returns the number of processors.
func (e *Execution) N() int { return len(e.Histories) }

// Starts returns the vector of start real times S_{alpha,p}.
func (e *Execution) Starts() []float64 {
	s := make([]float64, len(e.Histories))
	for i, h := range e.Histories {
		s[i] = h.Start
	}
	return s
}

// Views returns the views of all processors.
func (e *Execution) Views() []View {
	vs := make([]View, len(e.Histories))
	for i, h := range e.Histories {
		vs[i] = h.View()
	}
	return vs
}

// Equivalent reports whether two executions are indistinguishable to the
// processors (equal views everywhere).
func Equivalent(a, b *Execution) bool {
	if a.N() != b.N() {
		return false
	}
	for i := range a.Histories {
		if !a.Histories[i].View().Equal(b.Histories[i].View()) {
			return false
		}
	}
	return true
}

// Shift returns shift(e, S): processor p's history shifted by shifts[p],
// with the same message correspondence. Per Section 4.1 the result is
// equivalent to e.
func (e *Execution) Shift(shifts []float64) (*Execution, error) {
	if len(shifts) != e.N() {
		return nil, fmt.Errorf("model: shift vector has %d entries, want %d", len(shifts), e.N())
	}
	out := &Execution{Histories: make([]*History, e.N())}
	for p, h := range e.Histories {
		out.Histories[p] = h.Shift(shifts[p])
	}
	return out, nil
}

// Message is the resolved record of one message in an execution.
type Message struct {
	ID        MsgID
	From, To  ProcID
	SendClock float64 // sender clock time at send
	RecvClock float64 // receiver clock time at receipt
}

// Delay returns the real-time delay d(m) of the message within execution e.
func (m Message) Delay(e *Execution) float64 {
	send := e.Histories[m.From].Start + m.SendClock
	recv := e.Histories[m.To].Start + m.RecvClock
	return recv - send
}

// EstimatedDelay returns d~(m) = d(m) + S_from - S_to, which by Lemma 6.1 is
// computable from the views alone: it equals RecvClock - SendClock.
func (m Message) EstimatedDelay() float64 { return m.RecvClock - m.SendClock }

// Messages resolves the message correspondence of the execution. It returns
// an error if any received message was never sent, was sent twice, has
// mismatched endpoints, or if a sent message is received more than once.
// (Unreceived messages are permitted: the system may still be "in flight".)
func (e *Execution) Messages() ([]Message, error) {
	type sendRec struct {
		from      ProcID
		to        ProcID
		clock     float64
		delivered bool
	}
	sends := make(map[MsgID]*sendRec)
	for _, h := range e.Histories {
		for i, st := range h.Steps {
			if st.Event.Kind != KindSend {
				continue
			}
			if _, dup := sends[st.Event.Msg]; dup {
				return nil, fmt.Errorf("model: message %d sent twice", st.Event.Msg)
			}
			sends[st.Event.Msg] = &sendRec{from: h.Proc, to: st.Event.Peer, clock: h.Steps[i].Clock}
		}
	}
	var msgs []Message
	for _, h := range e.Histories {
		for _, st := range h.Steps {
			if st.Event.Kind != KindRecv {
				continue
			}
			rec, ok := sends[st.Event.Msg]
			if !ok {
				return nil, fmt.Errorf("model: message %d received by p%d but never sent", st.Event.Msg, h.Proc)
			}
			if rec.delivered {
				return nil, fmt.Errorf("model: message %d delivered twice", st.Event.Msg)
			}
			if rec.to != h.Proc || rec.from != st.Event.Peer {
				return nil, fmt.Errorf("model: message %d endpoint mismatch: sent p%d->p%d, received by p%d from p%d",
					st.Event.Msg, rec.from, rec.to, h.Proc, st.Event.Peer)
			}
			rec.delivered = true
			msgs = append(msgs, Message{
				ID:        st.Event.Msg,
				From:      rec.from,
				To:        h.Proc,
				SendClock: rec.clock,
				RecvClock: st.Clock,
			})
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].ID < msgs[j].ID })
	return msgs, nil
}

// Validate checks every history and the message correspondence, and that
// all message delays are finite.
func (e *Execution) Validate() error {
	for _, h := range e.Histories {
		if err := h.Validate(); err != nil {
			return err
		}
	}
	msgs, err := e.Messages()
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if d := m.Delay(e); math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("model: message %d has invalid delay %v", m.ID, d)
		}
	}
	return nil
}

// ValidateTimers checks condition 6 of Section 2.1 in its safe direction:
// every timer interrupt was previously set for exactly that clock time.
// (Set-but-never-fired timers are permitted, like in-flight messages.)
func (e *Execution) ValidateTimers() error {
	for _, h := range e.Histories {
		pending := make(map[float64]int)
		for _, st := range h.Steps {
			switch st.Event.Kind {
			case KindTimerSet:
				if st.Event.At < st.Clock {
					return fmt.Errorf("model: p%d sets a timer at clock %v for the past (%v)", h.Proc, st.Clock, st.Event.At)
				}
				pending[st.Event.At]++
			case KindTimer:
				if pending[st.Event.At] == 0 {
					return fmt.Errorf("model: p%d receives an unset timer for clock %v", h.Proc, st.Event.At)
				}
				pending[st.Event.At]--
				// Timers fire at bit-exact scheduled clocks in the model;
				// inequality here means a malformed history, not roundoff.
				if st.Clock != st.Event.At { //clocklint:allow floateq

					return fmt.Errorf("model: p%d timer for clock %v fires at clock %v", h.Proc, st.Event.At, st.Clock)
				}
			}
		}
	}
	return nil
}
