package model

import (
	"fmt"
	"sort"
)

// Builder assembles an Execution from message records without requiring
// callers to maintain clock-ordered step slices by hand. It is the bridge
// between the simulator (which produces messages) and the formal model.
type Builder struct {
	starts []float64
	msgs   []Message
	timers []timerRec
	nextID MsgID
}

// timerRec is a pending or fired timer for Build.
type timerRec struct {
	p      ProcID
	setAt  float64
	fireAt float64
	fired  bool
}

// NewBuilder returns a builder for len(starts) processors with the given
// start real times.
func NewBuilder(starts []float64) *Builder {
	return &Builder{starts: append([]float64(nil), starts...), nextID: 1}
}

// N returns the number of processors.
func (b *Builder) N() int { return len(b.starts) }

// AddMessage records a delivered message from -> to with the given sender
// and receiver clock times, returning its assigned MsgID.
func (b *Builder) AddMessage(from, to ProcID, sendClock, recvClock float64) (MsgID, error) {
	if int(from) < 0 || int(from) >= len(b.starts) {
		return 0, fmt.Errorf("model: sender p%d out of range", from)
	}
	if int(to) < 0 || int(to) >= len(b.starts) {
		return 0, fmt.Errorf("model: receiver p%d out of range", to)
	}
	if from == to {
		return 0, fmt.Errorf("model: self-message at p%d", from)
	}
	id := b.nextID
	b.nextID++
	b.msgs = append(b.msgs, Message{
		ID: id, From: from, To: to,
		SendClock: sendClock, RecvClock: recvClock,
	})
	return id, nil
}

// AddMessageDelay records a message sent at real time sendReal with real
// delay d, converting to clock times using the builder's start vector.
func (b *Builder) AddMessageDelay(from, to ProcID, sendReal, d float64) (MsgID, error) {
	if int(from) < 0 || int(from) >= len(b.starts) || int(to) < 0 || int(to) >= len(b.starts) {
		return 0, fmt.Errorf("model: endpoint out of range (p%d -> p%d)", from, to)
	}
	sendClock := sendReal - b.starts[from]
	recvClock := sendReal + d - b.starts[to]
	return b.AddMessage(from, to, sendClock, recvClock)
}

// Build constructs the execution: per-processor step sequences sorted by
// clock time, each preceded by its start event.
func (b *Builder) Build() (*Execution, error) {
	e := NewExecution(b.starts)
	for _, tr := range b.timers {
		e.Histories[tr.p].Steps = append(e.Histories[tr.p].Steps, Step{
			Clock: tr.setAt,
			Event: Event{Kind: KindTimerSet, At: tr.fireAt},
		})
		if tr.fired {
			e.Histories[tr.p].Steps = append(e.Histories[tr.p].Steps, Step{
				Clock: tr.fireAt,
				Event: Event{Kind: KindTimer, At: tr.fireAt},
			})
		}
	}
	for _, m := range b.msgs {
		e.Histories[m.From].Steps = append(e.Histories[m.From].Steps, Step{
			Clock: m.SendClock,
			Event: Event{Kind: KindSend, Peer: m.To, Msg: m.ID},
		})
		e.Histories[m.To].Steps = append(e.Histories[m.To].Steps, Step{
			Clock: m.RecvClock,
			Event: Event{Kind: KindRecv, Peer: m.From, Msg: m.ID},
		})
	}
	for _, h := range e.Histories {
		steps := h.Steps[1:] // keep the start event first
		sort.SliceStable(steps, func(i, j int) bool { return steps[i].Clock < steps[j].Clock })
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// AddTimer records a timer set at clock setAt for clock fireAt, optionally
// fired (a set timer may never fire if the run ends first — analogous to
// an in-flight message).
func (b *Builder) AddTimer(p ProcID, setAt, fireAt float64, fired bool) error {
	if int(p) < 0 || int(p) >= len(b.starts) {
		return fmt.Errorf("model: timer processor p%d out of range", p)
	}
	if fireAt < setAt {
		return fmt.Errorf("model: timer at p%d set at clock %v for earlier clock %v", p, setAt, fireAt)
	}
	b.timers = append(b.timers, timerRec{p: p, setAt: setAt, fireAt: fireAt, fired: fired})
	return nil
}
