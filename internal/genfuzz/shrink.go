package genfuzz

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"

	"clocksync/internal/scenario"
)

// Predicate reports whether a candidate scenario still reproduces the
// failure being minimized. Predicates must be pure functions of the
// scenario value: the shrinker calls them on many speculative candidates.
type Predicate func(*scenario.Scenario) bool

// CategoryPredicate builds the standard shrinking predicate: the candidate
// must still produce at least one finding of the original finding's
// category. Preserving the category (rather than "any finding") keeps the
// minimized scenario a witness for the same defect class.
func (o *Oracle) CategoryPredicate(sound bool, category string) Predicate {
	return func(s *scenario.Scenario) bool {
		for _, f := range o.Check(&Instance{Seed: s.Seed, Scenario: s, Sound: sound}) {
			if f.Category == category {
				return true
			}
		}
		return false
	}
}

// ShrinkStats describes one shrink run.
type ShrinkStats struct {
	// Accepted counts reductions that kept the predicate true.
	Accepted int
	// Checks counts predicate evaluations (each one replays the full
	// oracle).
	Checks int
}

// Shrink delta-debugs a failing scenario down to a (locally) minimal one
// that still satisfies pred. The input scenario must satisfy pred; if it
// does not, Shrink returns it unchanged.
//
// The reduction passes, in order: pin the randomness (explicit starts,
// explicit link list) so structural edits don't shift unrelated draws;
// ddmin over links; drop faults; shrink the traffic; compact unused
// processors; round constants. Every accepted structural edit strictly
// decreases a well-founded size metric and the value-rounding pass is a
// bounded sweep, so Shrink always terminates.
func Shrink(s *scenario.Scenario, pred Predicate) (*scenario.Scenario, ShrinkStats) {
	var st ShrinkStats
	check := func(c *scenario.Scenario) bool {
		st.Checks++
		return pred(c)
	}
	if !check(s) {
		return s, st
	}
	cur := normalize(s, check, &st)
	for {
		before := size(cur)
		cur = shrinkLinks(cur, check, &st)
		cur = shrinkVertices(cur, check, &st)
		cur = shrinkFaults(cur, check, &st)
		cur = shrinkProtocol(cur, check, &st)
		cur = compactProcs(cur, check, &st)
		if size(cur) >= before {
			break
		}
	}
	cur = roundValues(cur, check, &st)
	return cur, st
}

// size is the well-founded metric every structural reduction decreases.
func size(s *scenario.Scenario) int {
	n := s.Processors + len(s.Topology.Pairs) + len(s.Links)
	if s.Faults != nil {
		n += len(s.Faults.Crashes) + len(s.Faults.Partitions) + len(s.Faults.Byzantine)
		if s.Faults.Loss > 0 {
			n++
		}
	}
	n += s.Protocol.K + s.Protocol.Count + s.Protocol.Rounds
	return n
}

func clone(s *scenario.Scenario) *scenario.Scenario {
	b, err := json.Marshal(s)
	if err != nil {
		panic("genfuzz: scenario not marshalable: " + err.Error())
	}
	var c scenario.Scenario
	if err := json.Unmarshal(b, &c); err != nil {
		panic("genfuzz: scenario not round-trippable: " + err.Error())
	}
	return &c
}

// normalize pins every rng draw that structural edits could otherwise
// shift: explicit start times and an explicit ("custom") link list. After
// this, Build's only remaining draw is the run seed — the first Int63 of
// the scenario seed — which no longer depends on the topology, so
// dropping a link perturbs nothing else. Kept only if the failure
// survives the rewrite (it almost always does; a Build-stage failure may
// not, and then shrinking proceeds on the raw scenario).
func normalize(s *scenario.Scenario, check func(*scenario.Scenario) bool, st *ShrinkStats) *scenario.Scenario {
	built, err := s.Build()
	if err != nil {
		return s
	}
	c := clone(s)
	c.Starts = built.Starts
	c.StartSpread = 0
	pairs := make([][2]int, len(built.Links))
	for i, l := range built.Links {
		pairs[i] = [2]int{int(l.P), int(l.Q)}
	}
	c.Topology = scenario.Topology{Kind: "custom", Pairs: pairs}
	if check(c) {
		st.Accepted++
		return c
	}
	return s
}

// withoutPairs removes the pairs at the given index set and prunes link
// overrides that referenced them.
func withoutPairs(s *scenario.Scenario, drop map[int]bool) *scenario.Scenario {
	c := clone(s)
	var kept [][2]int
	for i, p := range s.Topology.Pairs {
		if !drop[i] {
			kept = append(kept, p)
		}
	}
	c.Topology.Pairs = kept
	inKept := make(map[[2]int]bool, len(kept))
	for _, p := range kept {
		inKept[canonPair(p)] = true
	}
	var links []scenario.LinkOverride
	for _, o := range s.Links {
		if inKept[canonPair([2]int{o.P, o.Q})] {
			links = append(links, o)
		}
	}
	c.Links = links
	return c
}

func canonPair(p [2]int) [2]int {
	if p[0] > p[1] {
		return [2]int{p[1], p[0]}
	}
	return p
}

// shrinkLinks is greedy ddmin over the explicit link list: try dropping
// chunks of half the list, then quarters, down to single links. Only
// meaningful after normalize switched the topology to "custom"; on named
// topologies it is a no-op (Pairs empty).
func shrinkLinks(s *scenario.Scenario, check func(*scenario.Scenario) bool, st *ShrinkStats) *scenario.Scenario {
	cur := s
	for chunk := (len(cur.Topology.Pairs) + 1) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo < len(cur.Topology.Pairs); {
			hi := lo + chunk
			if hi > len(cur.Topology.Pairs) {
				hi = len(cur.Topology.Pairs)
			}
			drop := make(map[int]bool, hi-lo)
			for i := lo; i < hi; i++ {
				drop[i] = true
			}
			if cand := withoutPairs(cur, drop); check(cand) {
				st.Accepted++
				cur = cand // indices shifted; retry same offset
			} else {
				lo = hi
			}
		}
	}
	return cur
}

// shrinkVertices deletes whole processors — each incident link goes with
// its endpoint and the survivors are renumbered in the same candidate, so
// no isolated processor (and no spurious disconnection) is ever proposed.
// This is what gets a failing tree below its link count: tree links are
// individually unremovable (each one disconnects), but leaves are not.
func shrinkVertices(s *scenario.Scenario, check func(*scenario.Scenario) bool, st *ShrinkStats) *scenario.Scenario {
	cur := s
	if cur.Topology.Kind != "custom" {
		return cur
	}
	for p := cur.Processors - 1; p >= 0; p-- {
		if cur.Processors <= 2 {
			break
		}
		cand, ok := removeVertex(cur, p)
		if !ok {
			continue
		}
		if check(cand) {
			st.Accepted++
			cur = cand
		}
	}
	return cur
}

// removeVertex drops processor p, every link and fault touching it, and
// renumbers the remaining processors densely. Returns ok=false when the
// scenario cannot be rewritten safely (fraction-form byzantine entries
// change meaning with n).
func removeVertex(s *scenario.Scenario, p int) (*scenario.Scenario, bool) {
	if s.Faults != nil {
		for _, b := range s.Faults.Byzantine {
			if b.Fraction > 0 {
				return nil, false
			}
		}
	}
	remap := func(q int) int {
		if q > p {
			return q - 1
		}
		return q
	}
	c := clone(s)
	c.Processors = s.Processors - 1
	if len(s.Starts) == s.Processors {
		c.Starts = append(append([]float64(nil), s.Starts[:p]...), s.Starts[p+1:]...)
	}
	c.Topology.Pairs = nil
	for _, e := range s.Topology.Pairs {
		if e[0] == p || e[1] == p {
			continue
		}
		c.Topology.Pairs = append(c.Topology.Pairs, [2]int{remap(e[0]), remap(e[1])})
	}
	c.Links = nil
	for _, o := range s.Links {
		if o.P == p || o.Q == p {
			continue
		}
		o.P, o.Q = remap(o.P), remap(o.Q)
		c.Links = append(c.Links, o)
	}
	if c.Faults != nil {
		f := c.Faults
		f.Crashes = nil
		for _, cr := range s.Faults.Crashes {
			if cr.Proc == p {
				continue
			}
			cr.Proc = remap(cr.Proc)
			f.Crashes = append(f.Crashes, cr)
		}
		f.Partitions = nil
		for _, pt := range s.Faults.Partitions {
			if pt.P == p || pt.Q == p {
				continue
			}
			pt.P, pt.Q = remap(pt.P), remap(pt.Q)
			f.Partitions = append(f.Partitions, pt)
		}
		f.Byzantine = nil
		for _, b := range s.Faults.Byzantine {
			if b.Proc != nil && *b.Proc == p {
				continue
			}
			if b.Proc != nil {
				v := remap(*b.Proc)
				b.Proc = &v
			}
			f.Byzantine = append(f.Byzantine, b)
		}
	}
	return c, true
}

// shrinkFaults tries removing the fault section wholesale, then each
// crash, partition and byzantine entry one at a time, then ambient loss.
func shrinkFaults(s *scenario.Scenario, check func(*scenario.Scenario) bool, st *ShrinkStats) *scenario.Scenario {
	cur := s
	if cur.Faults == nil {
		return cur
	}
	if cand := clone(cur); true {
		cand.Faults = nil
		if check(cand) {
			st.Accepted++
			return cand
		}
	}
	attempt := func(edit func(f *scenario.FaultsSpec) bool) {
		for {
			cand := clone(cur)
			if !edit(cand.Faults) {
				return
			}
			if !check(cand) {
				return
			}
			st.Accepted++
			cur = cand
		}
	}
	attempt(func(f *scenario.FaultsSpec) bool {
		if len(f.Crashes) == 0 {
			return false
		}
		f.Crashes = f.Crashes[1:]
		return true
	})
	attempt(func(f *scenario.FaultsSpec) bool {
		if len(f.Partitions) == 0 {
			return false
		}
		f.Partitions = f.Partitions[1:]
		return true
	})
	attempt(func(f *scenario.FaultsSpec) bool {
		if len(f.Byzantine) == 0 {
			return false
		}
		f.Byzantine = f.Byzantine[1:]
		return true
	})
	attempt(func(f *scenario.FaultsSpec) bool {
		if f.Loss == 0 {
			return false
		}
		f.Loss = 0
		return true
	})
	// Dropping individual trailing entries (the loops above only peel the
	// head) — peel the tail too.
	attempt(func(f *scenario.FaultsSpec) bool {
		if len(f.Crashes) == 0 {
			return false
		}
		f.Crashes = f.Crashes[:len(f.Crashes)-1]
		return true
	})
	attempt(func(f *scenario.FaultsSpec) bool {
		if len(f.Partitions) == 0 {
			return false
		}
		f.Partitions = f.Partitions[:len(f.Partitions)-1]
		return true
	})
	attempt(func(f *scenario.FaultsSpec) bool {
		if len(f.Byzantine) == 0 {
			return false
		}
		f.Byzantine = f.Byzantine[:len(f.Byzantine)-1]
		return true
	})
	return cur
}

// shrinkProtocol tries the smallest traffic that still fails: single
// messages, zero spacing.
func shrinkProtocol(s *scenario.Scenario, check func(*scenario.Scenario) bool, st *ShrinkStats) *scenario.Scenario {
	cur := s
	try := func(edit func(p *scenario.ProtocolSpec) bool) {
		cand := clone(cur)
		if !edit(&cand.Protocol) {
			return
		}
		if check(cand) {
			st.Accepted++
			cur = cand
		}
	}
	try(func(p *scenario.ProtocolSpec) bool {
		if p.K <= 1 {
			return false
		}
		p.K = 1
		return true
	})
	try(func(p *scenario.ProtocolSpec) bool {
		if p.Count <= 1 {
			return false
		}
		p.Count = 1
		return true
	})
	try(func(p *scenario.ProtocolSpec) bool {
		if p.Rounds <= 1 {
			return false
		}
		p.Rounds = 1
		return true
	})
	return cur
}

// compactProcs renumbers the processors that still appear in links or
// faults down to a dense 0..k-1 range and truncates everything else.
func compactProcs(s *scenario.Scenario, check func(*scenario.Scenario) bool, st *ShrinkStats) *scenario.Scenario {
	if s.Topology.Kind != "custom" {
		return s
	}
	used := map[int]bool{}
	for _, p := range s.Topology.Pairs {
		used[p[0]] = true
		used[p[1]] = true
	}
	if s.Faults != nil {
		for _, c := range s.Faults.Crashes {
			used[c.Proc] = true
		}
		for _, p := range s.Faults.Partitions {
			used[p.P] = true
			used[p.Q] = true
		}
		for _, b := range s.Faults.Byzantine {
			if b.Proc != nil {
				used[*b.Proc] = true
			}
			if b.Fraction > 0 {
				// Fraction resolves against n; renumbering changes its
				// meaning, so refuse to compact under fraction-form
				// byzantine entries.
				return s
			}
		}
	}
	if len(used) == 0 || len(used) >= s.Processors {
		return s
	}
	remap := make(map[int]int, len(used))
	next := 0
	for p := 0; p < s.Processors; p++ {
		if used[p] {
			remap[p] = next
			next++
		}
	}
	c := clone(s)
	c.Processors = len(used)
	if len(s.Starts) == s.Processors {
		c.Starts = c.Starts[:0]
		for p := 0; p < s.Processors; p++ {
			if used[p] {
				c.Starts = append(c.Starts, s.Starts[p])
			}
		}
	}
	for i, p := range c.Topology.Pairs {
		c.Topology.Pairs[i] = [2]int{remap[p[0]], remap[p[1]]}
	}
	for i := range c.Links {
		c.Links[i].P = remap[c.Links[i].P]
		c.Links[i].Q = remap[c.Links[i].Q]
	}
	if c.Faults != nil {
		for i := range c.Faults.Crashes {
			c.Faults.Crashes[i].Proc = remap[c.Faults.Crashes[i].Proc]
		}
		for i := range c.Faults.Partitions {
			c.Faults.Partitions[i].P = remap[c.Faults.Partitions[i].P]
			c.Faults.Partitions[i].Q = remap[c.Faults.Partitions[i].Q]
		}
		for i := range c.Faults.Byzantine {
			if c.Faults.Byzantine[i].Proc != nil {
				v := remap[*c.Faults.Byzantine[i].Proc]
				c.Faults.Byzantine[i].Proc = &v
			}
		}
	}
	if check(c) {
		st.Accepted++
		return c
	}
	return s
}

// roundValues coarsens every fractional constant in the scenario — one
// whole-document sweep per granularity, accepted only if the failure
// survives. Integral values (seeds, counts) are never touched.
func roundValues(s *scenario.Scenario, check func(*scenario.Scenario) bool, st *ShrinkStats) *scenario.Scenario {
	cur := s
	for _, digits := range []int{2, 1, 0} {
		cand, ok := roundScenario(cur, digits)
		if !ok {
			continue
		}
		if check(cand) {
			st.Accepted++
			cur = cand
		}
	}
	return cur
}

// roundScenario rounds every non-integral number in the scenario's JSON
// form to the given decimal places. Returns ok=false when nothing would
// change. The document is decoded with UseNumber so integral values —
// notably 63-bit seeds, which do not survive a float64 detour — pass
// through textually untouched.
func roundScenario(s *scenario.Scenario, digits int) (*scenario.Scenario, bool) {
	b, err := json.Marshal(s)
	if err != nil {
		return s, false
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return s, false
	}
	changed := false
	doc = roundAny(doc, digits, &changed)
	if !changed {
		return s, false
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return s, false
	}
	var c scenario.Scenario
	if err := json.Unmarshal(out, &c); err != nil {
		return s, false
	}
	return &c, true
}

func roundAny(v any, digits int, changed *bool) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			t[k] = roundAny(e, digits, changed)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = roundAny(e, digits, changed)
		}
		return t
	case json.Number:
		txt := t.String()
		if !strings.ContainsAny(txt, ".eE") {
			return t // integral (incl. seeds/counts): leave textually exact
		}
		f, err := t.Float64()
		if err != nil {
			return t
		}
		scale := math.Pow(10, float64(digits))
		r := math.Round(f*scale) / scale
		// Exact inequality is the point: detect whether rounding changed
		// the encoded constant at all, not whether two shifts agree.
		if r != f { //clocklint:allow floateq
			*changed = true
		}
		return r
	default:
		return v
	}
}
