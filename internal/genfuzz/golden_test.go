package genfuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clocksync/internal/scenario"
)

// TestPromotedGoldens replays every promoted golden scenario under
// internal/scenario/testdata through the full differential oracle — all
// four solver backends bit-identically, stream replay, and (consistency
// only, since goldens don't record the soundness flag) error behavior.
// These files are minimized witnesses of past or injected defects; a
// finding here means a regression escaped every other gate.
func TestPromotedGoldens(t *testing.T) {
	dir := filepath.Join("..", "scenario", "testdata")
	paths, err := filepath.Glob(filepath.Join(dir, "genfuzz-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no promoted goldens under %s — the corpus is gone", dir)
	}
	o := &Oracle{}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s, err := scenario.Parse(data)
			if err != nil {
				t.Fatalf("golden does not parse: %v", err)
			}
			if !strings.Contains(s.Comment, "genfuzz") {
				t.Errorf("golden lacks provenance comment: %q", s.Comment)
			}
			// Goldens are stored canonically; a regenerated file must diff
			// clean.
			canon, err := MarshalCanonical(s)
			if err != nil {
				t.Fatal(err)
			}
			if string(canon) != string(data) {
				t.Errorf("golden is not in canonical form; rewrite it with cmd/genfuzz -promote")
			}
			if fs := o.Check(&Instance{Seed: s.Seed, Scenario: s}); len(fs) > 0 {
				for _, f := range fs {
					t.Logf("%s", f)
				}
				t.Fatalf("%d finding(s) replaying promoted golden", len(fs))
			}
		})
	}
}
