package genfuzz

import (
	"encoding/json"
	"testing"
)

// TestGenerateDeterministic: Generate is a pure function of (seed, cfg) —
// the whole point of a seed-stream corpus is that CI and a laptop see the
// same instance for the same seed.
func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	for _, seed := range []int64{1, 7, 42, 1 << 40} {
		a := Generate(seed, cfg)
		b := Generate(seed, cfg)
		ja, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Errorf("seed %d: two generations differ:\n%s\n%s", seed, ja, jb)
		}
	}
}

// TestGeneratedScenariosBuild: every generated scenario must pass its own
// validation — the generator and the scenario schema must not drift apart.
func TestGeneratedScenariosBuild(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 150; seed++ {
		inst := Generate(seed, cfg)
		if _, err := inst.Scenario.Build(); err != nil {
			t.Errorf("seed %d: generated scenario does not build: %v", seed, err)
		}
	}
}

// TestGeneratorCoversShapes: over a modest seed block the generator must
// exercise every topology family and both sound and unsound instances —
// a silent collapse to one shape would gut the fuzzer's coverage.
func TestGeneratorCoversShapes(t *testing.T) {
	cfg := DefaultConfig()
	kinds := map[string]bool{}
	sound, unsound, faulted := 0, 0, 0
	for seed := int64(1); seed <= 300; seed++ {
		inst := Generate(seed, cfg)
		kinds[inst.Scenario.Topology.Kind] = true
		if inst.Sound {
			sound++
		} else {
			unsound++
		}
		if inst.Scenario.Faults != nil {
			faulted++
		}
	}
	if len(kinds) < 5 {
		t.Errorf("only %d topology kinds in 300 seeds: %v", len(kinds), kinds)
	}
	if sound == 0 || unsound == 0 {
		t.Errorf("sound/unsound split %d/%d — both must occur", sound, unsound)
	}
	if faulted == 0 {
		t.Error("no instance had a fault schedule")
	}
}

// TestOracleCleanOnSeedBlock is the in-tree version of the CI smoke run:
// the first seeds of the stream must produce zero findings on a healthy
// tree.
func TestOracleCleanOnSeedBlock(t *testing.T) {
	cfg := DefaultConfig()
	o := &Oracle{}
	for seed := int64(1); seed <= 60; seed++ {
		inst := Generate(seed, cfg)
		if fs := o.Check(inst); len(fs) > 0 {
			for _, f := range fs {
				t.Logf("seed %d: %s", seed, f)
			}
			t.Fatalf("seed %d: %d finding(s) on a healthy tree", seed, len(fs))
		}
	}
}
