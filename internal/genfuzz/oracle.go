package genfuzz

import (
	"fmt"
	"math"
	"math/rand"

	"clocksync/internal/baseline"
	"clocksync/internal/core"
	"clocksync/internal/model"
	"clocksync/internal/scenario"
	"clocksync/internal/sim"
	"clocksync/internal/trace"
	"clocksync/internal/verify"
)

// Finding categories. Shrinking preserves the category, so a reproducer
// stays a witness for the defect class that produced it.
const (
	// CatBuild: the generated scenario failed to build or simulate — a
	// generator/scenario contract violation.
	CatBuild = "build"
	// CatErrorDivergence: one backend rejected an instance another
	// accepted.
	CatErrorDivergence = "error-divergence"
	// CatSolverMismatch: two exact backends disagreed bit for bit.
	CatSolverMismatch = "solver-mismatch"
	// CatHierarchy: the hierarchical solver's certificate is unsound
	// (below the optimum, or a pair bound exceeds it).
	CatHierarchy = "hierarchy-unsound"
	// CatStream: incremental streaming replay diverged from batch.
	CatStream = "stream-divergence"
	// CatAdmissibility: a sound instance produced an execution violating
	// its own declared assumptions.
	CatAdmissibility = "admissibility"
	// CatOptimality: the brute-force verifier refuted Lemma 4.5 /
	// Theorem 4.6 on the result.
	CatOptimality = "optimality"
	// CatCertificate: the critical cycle does not certify the claimed
	// precision against ground truth.
	CatCertificate = "certificate"
	// CatBaseline: a baseline synchronizer achieved a guaranteed
	// precision below the claimed optimum — impossible if A_max is right.
	CatBaseline = "baseline-beats-optimum"
	// CatPanic: some stage of the pipeline panicked.
	CatPanic = "panic"
)

// Finding is one oracle disagreement on one instance.
type Finding struct {
	Category string `json:"category"`
	// Backend names the solver/engine that diverged, when meaningful.
	Backend string `json:"backend,omitempty"`
	// Detail is a human-readable description with the diverging values.
	Detail string `json:"detail"`
}

func (f Finding) String() string {
	if f.Backend != "" {
		return fmt.Sprintf("[%s/%s] %s", f.Category, f.Backend, f.Detail)
	}
	return fmt.Sprintf("[%s] %s", f.Category, f.Detail)
}

// Oracle cross-checks one instance against every independent computation
// of the same answer. The zero value is ready; fields override defaults.
type Oracle struct {
	// Trials is the number of random alternative correction vectors the
	// brute-force optimality check tries (default 12).
	Trials int
	// Tol is the certificate tolerance (default 1e-9, the repo standard).
	Tol float64
	// HierClusterSize forces the two-level hierarchical solver by
	// clustering at this size (default 8), so tiny instances still
	// exercise the contraction path; its results are checked for
	// soundness, not bit-identity.
	HierClusterSize int
	// Mutate, when non-nil, perturbs each backend's result after a
	// successful solve — the fault-injection hook that lets tests and
	// cmd/genfuzz -inject prove the harness catches a buggy solver.
	Mutate func(solver core.Solver, res *core.Result)
}

func (o *Oracle) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	return 12
}

func (o *Oracle) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-9
}

func (o *Oracle) hierClusterSize() int {
	if o.HierClusterSize > 0 {
		return o.HierClusterSize
	}
	return 8
}

// Check runs the full differential oracle on one instance and returns
// every disagreement found. An empty slice is the expected outcome. A
// panic anywhere in the pipeline is converted into a finding so the
// shrinker can minimize crashing instances like any other.
func (o *Oracle) Check(inst *Instance) (fs []Finding) {
	defer func() {
		if r := recover(); r != nil {
			fs = append(fs, Finding{Category: CatPanic, Detail: fmt.Sprintf("panic: %v", r)})
		}
	}()
	built, err := inst.Scenario.Build()
	if err != nil {
		return append(fs, Finding{Category: CatBuild, Detail: fmt.Sprintf("scenario build: %v", err)})
	}
	exec, err := sim.Run(built.Net, built.Factory, built.RunCfg)
	if err != nil {
		return append(fs, Finding{Category: CatBuild, Detail: fmt.Sprintf("sim run: %v", err)})
	}
	tab, err := trace.Collect(exec, false)
	if err != nil {
		return append(fs, Finding{Category: CatBuild, Detail: fmt.Sprintf("trace collect: %v", err)})
	}

	n := inst.Scenario.Processors
	mopts := core.DefaultMLSOptions()
	solve := func(solver core.Solver, clusterSize int) (*core.Result, error) {
		res, err := core.SynchronizeSystem(n, built.Links, tab, mopts, core.Options{Solver: solver, ClusterSize: clusterSize})
		if err == nil && o.Mutate != nil {
			o.Mutate(solver, res)
		}
		return res, err
	}

	dense, errDense := solve(core.SolverDense, 0)
	for _, backend := range []core.Solver{core.SolverAuto, core.SolverSparse, core.SolverHierarchical} {
		got, err := solve(backend, 0)
		if (err == nil) != (errDense == nil) {
			fs = append(fs, Finding{
				Category: CatErrorDivergence, Backend: backend.String(),
				Detail: fmt.Sprintf("dense err=%v, %s err=%v", errDense, backend, err),
			})
			continue
		}
		if errDense != nil {
			continue
		}
		fs = append(fs, diffResults(backend.String(), dense, got)...)
	}

	// The genuinely two-level hierarchical path: forced small clusters.
	// Exactness is not promised, soundness is.
	if errDense == nil {
		hier, err := solve(core.SolverHierarchical, o.hierClusterSize())
		if err != nil {
			fs = append(fs, Finding{Category: CatErrorDivergence, Backend: "hierarchical-clustered",
				Detail: fmt.Sprintf("dense solved but clustered hierarchical failed: %v", err)})
		} else {
			fs = append(fs, o.checkHierarchy(dense, hier)...)
		}
	}

	fs = append(fs, o.checkStream(inst, built, exec, tab, dense, errDense)...)

	if inst.Sound && errDense == nil {
		fs = append(fs, o.checkGroundTruth(inst, built, exec, dense)...)
	}
	return fs
}

// diffResults compares an exact backend bit for bit against the dense
// reference: corrections, precision, component structure, and the
// in-component m~s entries (the cross-component entries are the only ones
// the sparse backends legitimately leave +Inf).
func diffResults(backend string, want, got *core.Result) []Finding {
	var fs []Finding
	mism := func(detail string, args ...any) {
		fs = append(fs, Finding{Category: CatSolverMismatch, Backend: backend, Detail: fmt.Sprintf(detail, args...)})
	}
	if !bitsEq(want.Precision, got.Precision) {
		mism("precision dense=%v %s=%v", want.Precision, backend, got.Precision)
	}
	if len(want.Corrections) != len(got.Corrections) {
		mism("corrections length %d vs %d", len(want.Corrections), len(got.Corrections))
		return fs
	}
	for p := range want.Corrections {
		if !bitsEq(want.Corrections[p], got.Corrections[p]) {
			mism("correction p%d dense=%v %s=%v", p, want.Corrections[p], backend, got.Corrections[p])
			return fs
		}
	}
	if len(want.Components) != len(got.Components) {
		mism("%d vs %d components", len(want.Components), len(got.Components))
		return fs
	}
	for ci := range want.Components {
		if !intsEq(want.Components[ci], got.Components[ci]) {
			mism("component %d: %v vs %v", ci, want.Components[ci], got.Components[ci])
			return fs
		}
		if !bitsEq(want.ComponentPrecision[ci], got.ComponentPrecision[ci]) {
			mism("component %d precision dense=%v %s=%v", ci, want.ComponentPrecision[ci], backend, got.ComponentPrecision[ci])
			return fs
		}
	}
	if want.MS != nil && got.MS != nil {
		for _, comp := range want.Components {
			for _, p := range comp {
				for _, q := range comp {
					if !bitsEq(want.MS[p][q], got.MS[p][q]) {
						mism("ms[%d][%d] dense=%v %s=%v", p, q, want.MS[p][q], backend, got.MS[p][q])
						return fs
					}
				}
			}
		}
	}
	return fs
}

// checkHierarchy verifies the clustered hierarchical solve is sound: each
// component's certified precision dominates the exact optimum, and every
// in-component pair bound under the hierarchical corrections stays within
// the certificate.
func (o *Oracle) checkHierarchy(exact, hier *core.Result) []Finding {
	var fs []Finding
	tol := o.tol()
	if len(hier.Components) != len(exact.Components) {
		return append(fs, Finding{Category: CatHierarchy, Backend: "hierarchical-clustered",
			Detail: fmt.Sprintf("%d vs %d components", len(hier.Components), len(exact.Components))})
	}
	for ci, comp := range exact.Components {
		lam := hier.ComponentPrecision[ci]
		opt := exact.ComponentPrecision[ci]
		if math.IsInf(opt, 1) != math.IsInf(lam, 1) {
			fs = append(fs, Finding{Category: CatHierarchy, Backend: "hierarchical-clustered",
				Detail: fmt.Sprintf("component %d: certified %v vs optimum %v disagree about finiteness", ci, lam, opt)})
			continue
		}
		if math.IsInf(opt, 1) {
			continue
		}
		if lam < opt-tol {
			fs = append(fs, Finding{Category: CatHierarchy, Backend: "hierarchical-clustered",
				Detail: fmt.Sprintf("component %d: certified precision %v below optimum %v", ci, lam, opt)})
		}
		if exact.MS == nil {
			continue
		}
		for _, p := range comp {
			for _, q := range comp {
				if p == q {
					continue
				}
				if b := exact.MS[p][q] + hier.Corrections[q] - hier.Corrections[p]; b > lam+1e-6 {
					fs = append(fs, Finding{Category: CatHierarchy, Backend: "hierarchical-clustered",
						Detail: fmt.Sprintf("pair (%d,%d): bound %v exceeds certificate %v", p, q, b, lam)})
					return fs
				}
			}
		}
	}
	return fs
}

// checkStream replays the execution's message stream through the
// incremental engine — in a seed-derived random interleaving, with a
// mid-stream checkpoint — and demands bit-identity with a batch solve of
// the same observations.
func (o *Oracle) checkStream(inst *Instance, built *scenario.Built, exec *model.Execution, tab *trace.Table, dense *core.Result, errDense error) []Finding {
	n := inst.Scenario.Processors
	msgs, err := exec.Messages()
	if err != nil {
		return []Finding{{Category: CatBuild, Detail: fmt.Sprintf("messages: %v", err)}}
	}
	samples := make([]trace.Sample, len(msgs))
	for i, m := range msgs {
		samples[i] = trace.Sample{From: m.From, To: m.To, SendClock: m.SendClock, RecvClock: m.RecvClock}
	}
	// Observation order is a free choice of the deployment, so exercise a
	// random interleaving instead of delivery order. DirStats folding is
	// commutative, so the final state must match the batch table exactly.
	rng := rand.New(rand.NewSource(inst.Seed ^ 0x5ee0))
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })

	st, err := core.NewStream(n, built.Links, core.DefaultMLSOptions(), core.Options{})
	if err != nil {
		return []Finding{{Category: CatStream, Backend: "stream", Detail: fmt.Sprintf("NewStream: %v", err)}}
	}
	defer st.Close()
	// Internal cross-check mode: every Corrections call is compared against
	// a fresh batch solve inside the Stream itself; a mismatch surfaces as
	// an error, which the checkpoint comparison below reports as stream
	// divergence. (Relaxed repair is deliberately left off — it only
	// promises tolerance-level equivalence, not the bit-identity this
	// oracle demands.)
	st.SetCrossCheck(true)

	var fs []Finding
	partial := trace.NewTable(n, false)
	checkpoint := 0
	if len(samples) > 1 {
		checkpoint = 1 + rng.Intn(len(samples)-1)
	}
	compare := func(at string, tb *trace.Table) bool {
		got, errStream := st.Corrections()
		if errStream == nil {
			got = got.Clone() // detach from the Stream's double buffer
		}
		want, errBatch := core.SynchronizeSystem(n, built.Links, tb, core.DefaultMLSOptions(), core.Options{})
		if (errStream == nil) != (errBatch == nil) {
			fs = append(fs, Finding{Category: CatStream, Backend: "stream",
				Detail: fmt.Sprintf("%s: stream err=%v batch err=%v", at, errStream, errBatch)})
			return false
		}
		if errStream != nil {
			return true // both rejected identically
		}
		if !bitsEq(got.Precision, want.Precision) {
			fs = append(fs, Finding{Category: CatStream, Backend: "stream",
				Detail: fmt.Sprintf("%s: precision stream=%v batch=%v", at, got.Precision, want.Precision)})
			return false
		}
		for p := range want.Corrections {
			if !bitsEq(got.Corrections[p], want.Corrections[p]) {
				fs = append(fs, Finding{Category: CatStream, Backend: "stream",
					Detail: fmt.Sprintf("%s: correction p%d stream=%v batch=%v", at, p, got.Corrections[p], want.Corrections[p])})
				return false
			}
		}
		return true
	}
	for i, s := range samples {
		if err := st.Observe(s.From, s.To, s.SendClock, s.RecvClock); err != nil {
			return append(fs, Finding{Category: CatStream, Backend: "stream",
				Detail: fmt.Sprintf("observe %d (p%d->p%d): %v", i, s.From, s.To, err)})
		}
		if err := partial.Add(s); err != nil {
			return append(fs, Finding{Category: CatBuild, Detail: fmt.Sprintf("table add: %v", err)})
		}
		if i+1 == checkpoint {
			if !compare(fmt.Sprintf("checkpoint %d/%d", checkpoint, len(samples)), partial) {
				return fs
			}
		}
	}
	// Final state must also agree with the delivery-order batch table —
	// the shuffled table and tab summarize the same multiset of samples.
	if !compare("final", tab) {
		return fs
	}
	if errDense == nil && len(samples) > 0 {
		got, err := st.Corrections()
		if err == nil {
			got = got.Clone() // detach from the Stream's double buffer
		}
		if err != nil {
			fs = append(fs, Finding{Category: CatStream, Backend: "stream",
				Detail: fmt.Sprintf("final corrections: %v", err)})
		} else if !bitsEq(got.Precision, dense.Precision) {
			fs = append(fs, Finding{Category: CatStream, Backend: "stream",
				Detail: fmt.Sprintf("final precision %v vs dense reference %v", got.Precision, dense.Precision)})
		}
	}
	return fs
}

// checkGroundTruth runs the brute-force verifier on sound instances: the
// execution must be admissible, the certificate of Lemma 4.5/Theorem 4.6
// must close, the critical cycle must certify against true shifts, and no
// baseline may guarantee better precision than the claimed optimum.
func (o *Oracle) checkGroundTruth(inst *Instance, built *scenario.Built, exec *model.Execution, dense *core.Result) []Finding {
	var fs []Finding
	mopts := core.DefaultMLSOptions()
	if err := verify.CheckAdmissible(exec, built.Links, mopts); err != nil {
		return append(fs, Finding{Category: CatAdmissibility, Detail: err.Error()})
	}
	cert, err := verify.CheckOptimality(exec, built.Links, mopts, dense, o.trials(), inst.Seed^0x0b5e55ed)
	if err != nil {
		return append(fs, Finding{Category: CatOptimality, Detail: fmt.Sprintf("verifier: %v", err)})
	}
	if err := cert.Ok(o.tol()); err != nil {
		fs = append(fs, Finding{Category: CatOptimality, Detail: err.Error()})
	}
	if dense.CriticalCycle != nil {
		if _, err := verify.ExactCertificate(exec, built.Links, mopts, dense); err != nil {
			fs = append(fs, Finding{Category: CatCertificate, Detail: err.Error()})
		}
	}
	if len(dense.Components) == 1 && !math.IsInf(dense.Precision, 1) {
		fs = append(fs, o.checkBaselines(inst, built, exec, dense)...)
	}
	return fs
}

// checkBaselines evaluates every baseline synchronizer's guaranteed
// precision from ground truth: by Theorem 4.4 none can beat A_max. A
// baseline that errors (disconnected traffic, incomplete graph) simply
// abstains.
func (o *Oracle) checkBaselines(inst *Instance, built *scenario.Built, exec *model.Execution, dense *core.Result) []Finding {
	msTrue, err := verify.TrueMS(exec, built.Links, core.DefaultMLSOptions())
	if err != nil {
		return []Finding{{Category: CatOptimality, Detail: fmt.Sprintf("true ms: %v", err)}}
	}
	starts := exec.Starts()
	var fs []Finding
	for _, b := range []baseline.Baseline{baseline.NoOp{}, baseline.MidpointTree{}, baseline.LLAverage{}} {
		corr, err := b.Corrections(exec, model.ProcID(dense.Components[0][0]))
		if err != nil {
			continue
		}
		rb, err := verify.RhoBar(starts, msTrue, corr)
		if err != nil {
			continue
		}
		if rb < dense.Precision-o.tol() {
			fs = append(fs, Finding{Category: CatBaseline, Backend: b.Name(),
				Detail: fmt.Sprintf("baseline %s guarantees %v < claimed optimum %v", b.Name(), rb, dense.Precision)})
		}
	}
	return fs
}

func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
