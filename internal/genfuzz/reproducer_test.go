package genfuzz

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"clocksync/internal/scenario"
)

// TestCanonicalMarshalSortedAndIdempotent: canonical form sorts object
// keys and re-canonicalizing is a fixpoint, so regenerated reproducers
// diff cleanly.
func TestCanonicalMarshalSortedAndIdempotent(t *testing.T) {
	inst := Generate(3, DefaultConfig())
	rep := NewReproducer(inst, inst.Scenario, []Finding{{Category: CatSolverMismatch, Detail: "x"}}, false)
	data, err := rep.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	// Keys of the top-level object must appear in sorted order.
	idx := func(key string) int { return bytes.Index(data, []byte(`"`+key+`"`)) }
	for _, pair := range [][2]string{{"comment", "findings"}, {"findings", "scenario"}, {"scenario", "seed"}} {
		if idx(pair[0]) < 0 || idx(pair[1]) < 0 || idx(pair[0]) > idx(pair[1]) {
			t.Errorf("keys %q and %q not in canonical order", pair[0], pair[1])
		}
	}
	var round Reproducer
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	again, err := round.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("canonical form is not a fixpoint")
	}
}

// TestCanonicalMarshalPreservesBigSeeds: a 63-bit seed must survive the
// canonicalization round trip exactly — a float64 detour would corrupt it.
func TestCanonicalMarshalPreservesBigSeeds(t *testing.T) {
	const big = int64(1)<<62 + 3
	inst := Generate(5, DefaultConfig())
	inst.Seed = big
	inst.Scenario.Seed = big
	rep := NewReproducer(inst, inst.Scenario, nil, false)
	data, err := rep.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	var round Reproducer
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Seed != big || round.Scenario.Seed != big {
		t.Errorf("seed corrupted: %d / %d, want %d", round.Seed, round.Scenario.Seed, big)
	}
}

// TestPromoteProducesSelfDescribingGolden: promotion yields a bare
// scenario whose comment records the generator seed and regeneration
// command, parseable by the scenario package.
func TestPromoteProducesSelfDescribingGolden(t *testing.T) {
	inst := Generate(9, DefaultConfig())
	rep := NewReproducer(inst, inst.Scenario, []Finding{{Category: CatStream, Detail: "d"}}, true)
	golden, err := Promote(rep)
	if err != nil {
		t.Fatal(err)
	}
	s, err := scenario.Parse(golden)
	if err != nil {
		t.Fatalf("promoted golden does not parse as a scenario: %v", err)
	}
	if !strings.Contains(s.Comment, "seed 9") || !strings.Contains(s.Comment, "-promote") {
		t.Errorf("comment lacks provenance: %q", s.Comment)
	}
	if !strings.Contains(s.Comment, CatStream) {
		t.Errorf("comment lacks the finding category: %q", s.Comment)
	}
	if _, err := s.Build(); err != nil {
		t.Errorf("promoted golden does not build: %v", err)
	}
}

// TestParseReproducerRejectsBareScenario: a scenario file is not a
// reproducer; the loader must say so instead of treating a nil scenario
// as empty.
func TestParseReproducerRejectsBareScenario(t *testing.T) {
	inst := Generate(2, DefaultConfig())
	data, err := inst.Scenario.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseReproducer(data); err == nil {
		t.Error("bare scenario accepted as a reproducer")
	}
}
