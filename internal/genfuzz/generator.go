// Package genfuzz is the generative scenario-fuzzing harness: a seeded
// generator of random synchronization scenarios (topologies, per-link
// mixtures of delay assumptions, fault and Byzantine schedules), a
// differential oracle that cross-checks every instance against the
// brute-force verifier, the baseline synchronizers, all solver backends
// and a streaming replay, and a delta-debugging shrinker that reduces a
// failing instance to a minimal reproducer.
//
// The design follows microsmith's random-program builder: a single seed
// drives every choice, so any instance — and any finding — is replayable
// from its seed alone (see cmd/genfuzz and docs/fuzzing.md).
package genfuzz

import (
	"fmt"
	"math"
	"math/rand"

	"clocksync/internal/scenario"
	"clocksync/internal/sim"
)

// Config bounds the generator. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// MinProcs/MaxProcs bound the system size n.
	MinProcs, MaxProcs int
	// FaultProb is the probability that an instance carries a fault
	// schedule (crashes, partitions, flood loss).
	FaultProb float64
	// ByzantineProb is the probability that a faulty instance additionally
	// lists Byzantine reporters. The measurement protocols ignore them
	// (no payload mutator), but the entries exercise scenario validation
	// and the JSON round trip on every run.
	ByzantineProb float64
	// UnsoundProb is the probability that one link's declared assumption
	// is deliberately too tight for its delay model. Such instances are
	// marked !Sound: the oracle skips ground-truth optimality checks but
	// still requires every backend to agree bit for bit on whatever the
	// instance produces (including errors).
	UnsoundProb float64
	// LinkLossProb is the probability that a link's delay model is
	// wrapped in per-message loss.
	LinkLossProb float64
	// CongestionProb is the probability that a link's delays are wrapped
	// in periodic congestion surges.
	CongestionProb float64
	// OverrideProb is the probability that a topology link receives its
	// own LinkSpec instead of inheriting defaultLink.
	OverrideProb float64
}

// DefaultConfig returns the generator bounds used by cmd/genfuzz and CI.
func DefaultConfig() Config {
	return Config{
		MinProcs:       2,
		MaxProcs:       16,
		FaultProb:      0.4,
		ByzantineProb:  0.3,
		UnsoundProb:    0.05,
		LinkLossProb:   0.15,
		CongestionProb: 0.2,
		OverrideProb:   0.35,
	}
}

// Instance is one generated scenario plus the metadata the oracle needs.
type Instance struct {
	// Seed is the generator seed that reproduces the instance exactly.
	Seed int64
	// Scenario is the generated run description.
	Scenario *scenario.Scenario
	// Sound reports that every link's declared assumption admits every
	// delay its model can produce, so the paper's optimality theorems
	// must hold on the instance. Unsound instances only promise
	// backend-consistency.
	Sound bool
}

// Generate builds the instance for a seed under the given bounds. It is a
// pure function of (seed, cfg): the same pair always yields the same
// scenario, which is what makes findings replayable.
func Generate(seed int64, cfg Config) *Instance {
	rng := rand.New(rand.NewSource(seed))
	g := &gen{rng: rng, cfg: cfg}
	sc := g.scenario()
	return &Instance{Seed: seed, Scenario: sc, Sound: g.sound}
}

// gen carries the generator state for one instance.
type gen struct {
	rng   *rand.Rand
	cfg   Config
	sound bool
}

// scenario assembles the full instance.
func (g *gen) scenario() *scenario.Scenario {
	g.sound = true
	n, topo, pairs := g.topology()
	sc := &scenario.Scenario{
		Processors:  n,
		Seed:        g.rng.Int63(),
		StartSpread: 0.5 + 2.5*g.rng.Float64(),
		Topology:    topo,
	}
	def := g.linkSpec()
	sc.DefaultLink = &def
	if g.cfg.OverrideProb > 0 {
		for _, e := range pairs {
			if g.rng.Float64() < g.cfg.OverrideProb {
				sc.Links = append(sc.Links, scenario.LinkOverride{P: e.P, Q: e.Q, LinkSpec: g.linkSpec()})
			}
		}
	}
	sc.Protocol = g.protocol()
	if g.rng.Float64() < g.cfg.FaultProb {
		sc.Faults = g.faults(n, pairs)
	}
	return sc
}

// topology picks a link structure: the built-in families plus adversarial
// custom shapes (clique chains, barbells, bounded-degree chord rings,
// deliberately disconnected unions) that stress component handling and
// the sparse/hierarchical partitioning.
func (g *gen) topology() (int, scenario.Topology, []sim.Pair) {
	span := g.cfg.MaxProcs - g.cfg.MinProcs
	n := g.cfg.MinProcs
	if span > 0 {
		n += g.rng.Intn(span + 1)
	}
	if n < 2 {
		n = 2
	}
	switch g.rng.Intn(10) {
	case 0:
		return n, scenario.Topology{Kind: "line"}, sim.Line(n)
	case 1:
		return n, scenario.Topology{Kind: "ring"}, sim.Ring(n)
	case 2:
		return n, scenario.Topology{Kind: "star"}, sim.Star(n)
	case 3:
		if n > 8 {
			n = 8
		}
		return n, scenario.Topology{Kind: "complete"}, sim.Complete(n)
	case 4:
		b := 2 + g.rng.Intn(2)
		return n, scenario.Topology{Kind: "tree", B: b}, sim.Tree(n, b)
	case 5:
		w := 2 + g.rng.Intn(3)
		h := 2 + g.rng.Intn(3)
		return w * h, scenario.Topology{Kind: "grid", W: w, H: h}, sim.Grid(w, h)
	case 6:
		return g.customTopology(g.ringOfCliques(n))
	case 7:
		return g.customTopology(g.chordRing(n))
	case 8:
		return g.customTopology(g.barbell(n))
	default:
		return g.customTopology(g.disconnected(n))
	}
}

// customTopology wraps explicit pairs in scenario's "custom" kind.
func (g *gen) customTopology(n int, pairs []sim.Pair) (int, scenario.Topology, []sim.Pair) {
	t := scenario.Topology{Kind: "custom", Pairs: make([][2]int, len(pairs))}
	for i, e := range pairs {
		t.Pairs[i] = [2]int{e.P, e.Q}
	}
	return n, t, pairs
}

// ringOfCliques chains small cliques with single bridges — the clustered
// shape the hierarchical solver partitions best, with bridge links as the
// only inter-cluster constraints.
func (g *gen) ringOfCliques(n int) (int, []sim.Pair) {
	size := 2 + g.rng.Intn(3)
	cliques := n / size
	if cliques < 2 {
		cliques = 2
	}
	n = cliques * size
	var pairs []sim.Pair
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				pairs = append(pairs, sim.Pair{P: base + i, Q: base + j})
			}
		}
	}
	for c := 0; c < cliques; c++ {
		u := c*size + size - 1
		v := ((c + 1) % cliques) * size
		if u != v && (cliques > 2 || c == 0) {
			pairs = append(pairs, sim.Pair{P: u, Q: v})
		}
	}
	return n, dedupe(pairs)
}

// chordRing is a ring plus random chords with small bounded degree — an
// expander-like worst case for cluster partitioning.
func (g *gen) chordRing(n int) (int, []sim.Pair) {
	if n < 4 {
		n = 4
	}
	pairs := sim.Ring(n)
	chords := g.rng.Intn(n/2 + 1)
	for c := 0; c < chords; c++ {
		i := g.rng.Intn(n)
		j := g.rng.Intn(n)
		if i == j || (i+1)%n == j || (j+1)%n == i {
			continue
		}
		pairs = append(pairs, sim.Pair{P: min(i, j), Q: max(i, j)})
	}
	return n, dedupe(pairs)
}

// barbell joins two cliques by a long path — maximal diameter pressure on
// shortest-path accumulation and the worst case for midpoint baselines.
func (g *gen) barbell(n int) (int, []sim.Pair) {
	if n < 6 {
		n = 6
	}
	k := 2 + g.rng.Intn(2) // clique size at each end
	if 2*k >= n {
		k = 2
	}
	var pairs []sim.Pair
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, sim.Pair{P: i, Q: j})
			pairs = append(pairs, sim.Pair{P: n - 1 - i, Q: n - 1 - j})
		}
	}
	for i := k - 1; i < n-k; i++ {
		pairs = append(pairs, sim.Pair{P: i, Q: i + 1})
	}
	return n, dedupe(pairs)
}

// disconnected unions two independent components, exercising +Inf
// precision, per-component roots and the component machinery end to end.
func (g *gen) disconnected(n int) (int, []sim.Pair) {
	if n < 4 {
		n = 4
	}
	cut := 2 + g.rng.Intn(n-3) // first component size in [2, n-2]
	if n-cut < 2 {
		cut = n - 2
	}
	pairs := append([]sim.Pair(nil), sim.Ring(cut)...)
	for _, e := range sim.Ring(n - cut) {
		pairs = append(pairs, sim.Pair{P: e.P + cut, Q: e.Q + cut})
	}
	return n, dedupe(pairs)
}

func dedupe(in []sim.Pair) []sim.Pair {
	seen := make(map[sim.Pair]bool, len(in))
	out := in[:0]
	for _, e := range in {
		p, q := e.P, e.Q
		if p > q {
			p, q = q, p
		}
		c := sim.Pair{P: p, Q: q}
		if p == q || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// envelope is the support of a generated sampler: every delay it can
// produce lies in [lo, hi] (hi may be +Inf for heavy-tailed samplers).
type envelope struct {
	lo, hi float64
}

// linkSpec generates one delay model plus an assumption that is sound for
// it (unless the unsound dice say otherwise).
func (g *gen) linkSpec() scenario.LinkSpec {
	var spec scenario.LinkSpec
	var env envelope

	// Delay model first; the assumption is derived from its support.
	switch g.rng.Intn(4) {
	case 0: // symmetric sampler
		s, e := g.sampler()
		spec.Delays = scenario.DelaySpec{Kind: "symmetric", Sampler: &s}
		env = e
	case 1: // independent per-direction samplers
		a, ea := g.sampler()
		b, eb := g.sampler()
		spec.Delays = scenario.DelaySpec{Kind: "independent", PQ: &a, QP: &b}
		env = envelope{lo: math.Min(ea.lo, eb.lo), hi: math.Max(ea.hi, eb.hi)}
	default: // biasWindow: both directions inside one narrow window
		base := round3(0.02 + 0.2*g.rng.Float64())
		width := round3(0.002 + 0.02*g.rng.Float64())
		spec.Delays = scenario.DelaySpec{Kind: "biasWindow", Base: base, Width: width}
		env = envelope{lo: base, hi: base + width}
	}

	// Optional congestion surge widens the support.
	if g.rng.Float64() < g.cfg.CongestionProb && !math.IsInf(env.hi, 1) {
		surge := round3(0.01 + 0.1*g.rng.Float64())
		spec.Delays = scenario.DelaySpec{
			Kind:   "congestion",
			Inner:  cloneDelaySpec(spec.Delays),
			Period: round3(0.5 + g.rng.Float64()),
			Duty:   round3(0.2 + 0.5*g.rng.Float64()),
			Surge:  surge,
			Phase:  round3(g.rng.Float64()),
		}
		env.hi += surge
	}

	spec.Assumption = g.assumption(env)

	if g.rng.Float64() < g.cfg.LinkLossProb {
		spec.Loss = round3(0.05 + 0.25*g.rng.Float64())
	}
	return spec
}

// sampler draws a delay sampler and reports its support.
func (g *gen) sampler() (scenario.SamplerSpec, envelope) {
	switch g.rng.Intn(5) {
	case 0:
		d := round3(0.01 + 0.2*g.rng.Float64())
		return scenario.SamplerSpec{Kind: "constant", D: d}, envelope{d, d}
	case 1:
		lo := round3(0.01 + 0.1*g.rng.Float64())
		hi := round3(lo + 0.005 + 0.15*g.rng.Float64())
		return scenario.SamplerSpec{Kind: "uniform", Lo: lo, Hi: hi}, envelope{lo, hi}
	case 2:
		lo := round3(0.01 + 0.1*g.rng.Float64())
		hi := round3(lo + 0.01 + 0.1*g.rng.Float64())
		mu := round3(lo + (hi-lo)*g.rng.Float64())
		return scenario.SamplerSpec{Kind: "truncNormal", Mu: mu, Sig: round3(0.005 + 0.05*g.rng.Float64()), Lo: lo, Hi: hi}, envelope{lo, hi}
	case 3: // heavy tail: support unbounded above
		minD := round3(0.01 + 0.05*g.rng.Float64())
		return scenario.SamplerSpec{Kind: "shiftedExp", Min: minD, Mean: round3(0.01 + 0.08*g.rng.Float64())}, envelope{minD, math.Inf(1)}
	default: // bimodal over two bounded modes
		a := round3(0.01 + 0.05*g.rng.Float64())
		b := round3(a + 0.05 + 0.2*g.rng.Float64())
		return scenario.SamplerSpec{
			Kind: "bimodal",
			A:    &scenario.SamplerSpec{Kind: "constant", D: a},
			B:    &scenario.SamplerSpec{Kind: "constant", D: b},
			PA:   round3(0.1 + 0.8*g.rng.Float64()),
		}, envelope{a, b}
	}
}

// assumption picks a delay assumption admitting every delay in env — the
// per-link mixture of the paper's models 1-3 plus the RTT-bias model and
// Theorem 5.6 intersections. With probability cfg.UnsoundProb it instead
// returns a deliberately too-tight assumption and flags the instance.
func (g *gen) assumption(env envelope) scenario.AssumptionSpec {
	if g.rng.Float64() < g.cfg.UnsoundProb {
		g.sound = false
		// An upper bound strictly below the support maximum: observable
		// executions can violate it, so estimates may go infeasible or
		// admissibility checks may fail — either way, every backend must
		// tell the same story.
		ub := env.lo + 0.5*(math.Min(env.hi, env.lo+0.1)-env.lo)
		return scenario.AssumptionSpec{Kind: "symmetricBounds", LB: 0, UB: round3n(ub)}
	}
	kinds := []int{0, 1, 2} // noBounds, lowerOnly, bounds-ish
	width := env.hi - env.lo
	if !math.IsInf(env.hi, 1) {
		kinds = append(kinds, 3, 4) // bias and intersections need finite width
	}
	switch kinds[g.rng.Intn(len(kinds))] {
	case 0:
		return scenario.AssumptionSpec{Kind: "noBounds"}
	case 1: // model 2: lower bounds only, lb < lo
		return scenario.AssumptionSpec{
			Kind: "lowerOnly",
			LBPQ: lbBelow(env.lo*g.rng.Float64(), env.lo),
			LBQP: lbBelow(env.lo*g.rng.Float64(), env.lo),
		}
	case 2:
		if math.IsInf(env.hi, 1) {
			return scenario.AssumptionSpec{Kind: "lowerOnly", LBPQ: lbBelow(env.lo, env.lo), LBQP: lbBelow(env.lo, env.lo)}
		}
		if g.rng.Intn(2) == 0 { // model 1: two-sided symmetric bounds
			return scenario.AssumptionSpec{Kind: "symmetricBounds", LB: lbBelow(env.lo*g.rng.Float64(), env.lo), UB: ubAbove(env.hi+0.05*g.rng.Float64(), env.hi)}
		}
		return scenario.AssumptionSpec{ // asymmetric two-sided bounds
			Kind: "bounds",
			LBPQ: lbBelow(env.lo*g.rng.Float64(), env.lo), UBPQ: ubAbove(env.hi+0.05*g.rng.Float64(), env.hi),
			LBQP: lbBelow(env.lo*g.rng.Float64(), env.lo), UBQP: ubAbove(env.hi+0.05*g.rng.Float64(), env.hi),
		}
	case 3: // RTT bias: window width covers the whole support spread
		return scenario.AssumptionSpec{Kind: "bias", B: roundUp3(width + 0.002)}
	default: // Theorem 5.6 intersection of two sound parts
		return scenario.AssumptionSpec{Kind: "and", Parts: []scenario.AssumptionSpec{
			{Kind: "symmetricBounds", LB: lbBelow(env.lo/2, env.lo), UB: ubAbove(env.hi+0.02, env.hi)},
			{Kind: "bias", B: roundUp3(width + 0.002)},
		}}
	}
}

// protocol draws the measurement traffic pattern. Warmup -1 selects the
// safe automatic warmup so no message races a processor's start.
func (g *gen) protocol() scenario.ProtocolSpec {
	switch g.rng.Intn(3) {
	case 0:
		return scenario.ProtocolSpec{Kind: "burst", K: 1 + g.rng.Intn(5), Spacing: round3(0.01 * g.rng.Float64()), Warmup: -1}
	case 1:
		return scenario.ProtocolSpec{Kind: "periodic", Period: round3(0.1 + 0.4*g.rng.Float64()), Count: 1 + g.rng.Intn(4), Warmup: -1}
	default:
		return scenario.ProtocolSpec{Kind: "pingpong", Rounds: 1 + g.rng.Intn(4), Warmup: -1}
	}
}

// faults draws a crash/partition/loss/byzantine schedule. Times target the
// measurement window (after the automatic warmup of roughly spread+1) so
// faults actually intersect traffic instead of landing on idle air.
func (g *gen) faults(n int, pairs []sim.Pair) *scenario.FaultsSpec {
	f := &scenario.FaultsSpec{}
	for c := g.rng.Intn(3); c > 0; c-- {
		f.Crashes = append(f.Crashes, scenario.CrashSpec{
			Proc: g.rng.Intn(n),
			At:   round3(0.5 + 4*g.rng.Float64()),
		})
	}
	for p := g.rng.Intn(3); p > 0 && len(pairs) > 0; p-- {
		e := pairs[g.rng.Intn(len(pairs))]
		from := round3(4 * g.rng.Float64())
		spec := scenario.PartitionSpec{P: e.P, Q: e.Q, From: from}
		if g.rng.Intn(2) == 0 {
			spec.Until = round3(from + 0.5 + 2*g.rng.Float64())
		}
		f.Partitions = append(f.Partitions, spec)
	}
	if g.rng.Intn(2) == 0 {
		f.Loss = round3(0.3 * g.rng.Float64())
	}
	if g.rng.Float64() < g.cfg.ByzantineProb {
		strategies := []string{"inflate", "deflate", "skew", "equivocate", "forge"}
		spec := scenario.ByzantineSpec{
			Strategy:  strategies[g.rng.Intn(len(strategies))],
			Magnitude: round3(0.5 * g.rng.Float64()),
			Seed:      g.rng.Int63(),
		}
		if g.rng.Intn(2) == 0 || n < 4 {
			p := g.rng.Intn(n)
			spec.Proc = &p
		} else {
			// floor(fraction*n) >= 1 needs fraction >= 1/n; 0.25 is safe
			// for every n >= 4, so the entry never selects nobody.
			spec.Fraction = round3(0.25 + 0.25*g.rng.Float64())
		}
		f.Byzantine = append(f.Byzantine, spec)
	}
	if len(f.Crashes) == 0 && len(f.Partitions) == 0 && f.Loss == 0 && len(f.Byzantine) == 0 {
		return nil
	}
	return f
}

func cloneDelaySpec(d scenario.DelaySpec) *scenario.DelaySpec {
	c := d
	return &c
}

// round3 quantizes generated parameters to 1e-3 so reproducers and golden
// files stay human-readable and diff cleanly.
func round3(x float64) float64 { return math.Round(x*1000) / 1000 }

// roundDown3/roundUp3 quantize directionally so rounding can never turn a
// sound assumption unsound (lower bounds only move down, upper bounds and
// bias windows only move up).
func roundDown3(x float64) float64 { return math.Floor(x*1000) / 1000 }
func roundUp3(x float64) float64   { return math.Ceil(x*1000) / 1000 }

// lbBelow quantizes a lower-bound target x to 1e-3, clamped at least one
// full quantum below the support minimum lo. Actual delays are
// reconstructed from floating-point event times (recv − send), so an
// observed delay can land a few ulps below the sampled value; a bound
// touching the support edge would turn that roundoff into spurious
// admissibility findings on sound instances.
func lbBelow(x, lo float64) float64 {
	b := roundDown3(x)
	if edge := math.Floor(lo*1000-1) / 1000; b > edge {
		b = edge
	}
	if b < 0 {
		b = 0
	}
	return b
}

// ubAbove quantizes an upper-bound target x to 1e-3, at least one full
// quantum above the support maximum hi — the mirror of lbBelow for the
// same event-time roundoff reason.
func ubAbove(x, hi float64) float64 {
	u := roundUp3(x)
	if edge := math.Ceil(hi*1000+1) / 1000; u < edge {
		u = edge
	}
	return u
}

// round3n is round3 guarding against the tiny negatives Floor tricks can
// produce on denormal inputs.
func round3n(x float64) float64 {
	r := round3(x)
	if r < 0 {
		return 0
	}
	return r
}

// String summarizes the instance for logs.
func (in *Instance) String() string {
	sc := in.Scenario
	links := len(sc.Topology.Pairs)
	if sc.Topology.Kind != "custom" {
		links = -1
	}
	return fmt.Sprintf("instance(seed=%d n=%d topo=%s links=%d sound=%v)",
		in.Seed, sc.Processors, sc.Topology.Kind, links, in.Sound)
}
