package genfuzz

import "testing"

// FuzzGeneratedScenario drives the differential oracle from the
// generator's own seed stream: the fuzzer explores the int64 space, each
// value deterministically expands to a full scenario, and any finding is
// a real divergence between two independent computations of the same
// answer. The go-fuzz corpus therefore stores nothing but seeds — shrunk
// reproducers live in internal/scenario/testdata instead.
func FuzzGeneratedScenario(f *testing.F) {
	for seed := int64(1); seed <= 32; seed++ {
		f.Add(seed)
	}
	cfg := DefaultConfig()
	f.Fuzz(func(t *testing.T, seed int64) {
		inst := Generate(seed, cfg)
		o := &Oracle{}
		if fs := o.Check(inst); len(fs) > 0 {
			for _, fd := range fs {
				t.Logf("%s", fd)
			}
			t.Fatalf("seed %d (n=%d, sound=%v): %d finding(s); shrink with: go run ./cmd/genfuzz -seed %d -count 1 -shrink",
				seed, inst.Scenario.Processors, inst.Sound, len(fs), seed)
		}
	})
}
