package genfuzz

import (
	"bytes"
	"encoding/json"
	"fmt"

	"clocksync/internal/scenario"
)

// Reproducer is the self-contained failure record cmd/genfuzz writes: the
// (possibly shrunk) scenario, the findings it produces, and enough
// provenance to regenerate or replay it without the original run.
type Reproducer struct {
	// Comment carries provenance and the exact replay command.
	Comment string `json:"comment"`
	// Seed is the generator seed that produced the original instance.
	Seed int64 `json:"seed"`
	// Sound records whether the generator promised an admissible
	// instance (ground-truth checks apply) or not (consistency only).
	Sound bool `json:"sound"`
	// Shrunk is true when Scenario went through the minimizer.
	Shrunk bool `json:"shrunk"`
	// Findings are the oracle disagreements on Scenario.
	Findings []Finding `json:"findings"`
	// Scenario reproduces the failure when replayed through the oracle.
	Scenario *scenario.Scenario `json:"scenario"`
}

// NewReproducer packages a failing instance. scen may be the original or
// the shrunk scenario; findings should be the oracle output on scen.
func NewReproducer(inst *Instance, scen *scenario.Scenario, findings []Finding, shrunk bool) *Reproducer {
	r := &Reproducer{
		Seed:     inst.Seed,
		Sound:    inst.Sound,
		Shrunk:   shrunk,
		Findings: findings,
		Scenario: scen,
	}
	r.Comment = fmt.Sprintf("genfuzz reproducer: generator seed %d; replay: %s; regenerate: go run ./cmd/genfuzz -seed %d -count 1 -shrink",
		inst.Seed, ReplayCommand("<this file>"), inst.Seed)
	return r
}

// ReplayCommand is the command line that re-checks a reproducer file.
func ReplayCommand(path string) string {
	return fmt.Sprintf("go run ./cmd/genfuzz -replay %s", path)
}

// MarshalCanonical renders any JSON-marshalable value in canonical form:
// two-space indented, object keys sorted, numbers preserved exactly
// (int64 seeds survive — no float64 round-trip). Canonical form is what
// reproducer files and promoted goldens are written in, so regenerating
// one produces a clean diff.
func MarshalCanonical(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// MarshalCanonical renders the reproducer in canonical form.
func (r *Reproducer) MarshalCanonical() ([]byte, error) { return MarshalCanonical(r) }

// ParseReproducer loads a reproducer file.
func ParseReproducer(data []byte) (*Reproducer, error) {
	var r Reproducer
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("genfuzz: parse reproducer: %w", err)
	}
	if r.Scenario == nil {
		return nil, fmt.Errorf("genfuzz: reproducer has no scenario")
	}
	return &r, nil
}

// Promote converts a reproducer into golden-scenario form: the bare
// scenario in canonical JSON, with provenance (generator seed, finding
// category, replay command) recorded in the scenario's comment field so
// the golden is self-describing in review.
func Promote(r *Reproducer) ([]byte, error) {
	if r.Scenario == nil {
		return nil, fmt.Errorf("genfuzz: promote: reproducer has no scenario")
	}
	s := *r.Scenario
	cat := "none"
	if len(r.Findings) > 0 {
		cat = r.Findings[0].Category
	}
	s.Comment = fmt.Sprintf("promoted genfuzz golden: generator seed %d, finding %s; regenerate: go run ./cmd/genfuzz -seed %d -count 1 -shrink -promote",
		r.Seed, cat, r.Seed)
	return MarshalCanonical(&s)
}
