package genfuzz

import (
	"testing"

	"clocksync/internal/core"
)

// firstFailing scans the seed stream for an instance on which the mutated
// oracle reports a finding of the wanted category, and returns it.
func firstFailing(t *testing.T, o *Oracle, category string, maxSeeds int64) (*Instance, []Finding) {
	t.Helper()
	cfg := DefaultConfig()
	for seed := int64(1); seed <= maxSeeds; seed++ {
		inst := Generate(seed, cfg)
		fs := o.Check(inst)
		for _, f := range fs {
			if f.Category == category {
				return inst, fs
			}
		}
	}
	t.Fatalf("no %s finding in %d seeds — the oracle is blind to this corruption", category, maxSeeds)
	return nil, nil
}

// TestOracleCatchesSparsePrecisionBug: a deliberately corrupted sparse
// precision must surface as a solver-mismatch finding within a handful of
// seeds.
func TestOracleCatchesSparsePrecisionBug(t *testing.T) {
	o := &Oracle{Mutate: func(s core.Solver, res *core.Result) {
		if s == core.SolverSparse && len(res.ComponentPrecision) > 0 {
			res.Precision += 1e-3
		}
	}}
	inst, _ := firstFailing(t, o, CatSolverMismatch, 20)
	if inst == nil {
		t.Fatal("unreachable")
	}
}

// TestOracleCatchesCorrectionBug: perturbing one correction entry in the
// auto backend is caught bit for bit.
func TestOracleCatchesCorrectionBug(t *testing.T) {
	o := &Oracle{Mutate: func(s core.Solver, res *core.Result) {
		if s == core.SolverAuto && len(res.Corrections) > 1 {
			res.Corrections[len(res.Corrections)-1] += 1e-9
		}
	}}
	firstFailing(t, o, CatSolverMismatch, 20)
}

// TestOracleCatchesUnsoundHierarchyCertificate: halving the clustered
// hierarchical solver's certified precision drives it below the exact
// optimum, which the soundness check must reject. (The same corruption on
// the default-clustered run is caught as a bit-level mismatch; restrict
// the mutation to the forced-cluster pass via the result's nil MS — the
// clustered run at ClusterSize 8 still materializes MS for tiny n, so key
// on precision disagreeing with components instead: simplest is to corrupt
// both and accept either finding.)
func TestOracleCatchesUnsoundHierarchyCertificate(t *testing.T) {
	o := &Oracle{Mutate: func(s core.Solver, res *core.Result) {
		if s == core.SolverHierarchical {
			for i := range res.ComponentPrecision {
				res.ComponentPrecision[i] *= 0.5
			}
		}
	}}
	cfg := DefaultConfig()
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		for _, f := range o.Check(Generate(seed, cfg)) {
			if f.Category == CatHierarchy || f.Category == CatSolverMismatch {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("an unsound hierarchical certificate went unnoticed")
	}
}

// TestOracleCatchesPanic: a panicking backend becomes a finding, not a
// crashed fuzzer.
func TestOracleCatchesPanic(t *testing.T) {
	o := &Oracle{Mutate: func(s core.Solver, res *core.Result) {
		if s == core.SolverSparse {
			panic("injected solver panic")
		}
	}}
	firstFailing(t, o, CatPanic, 20)
}
