package genfuzz

import (
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/scenario"
)

func sparsePrecisionBug() *Oracle {
	return &Oracle{Mutate: func(s core.Solver, res *core.Result) {
		if s == core.SolverSparse && len(res.ComponentPrecision) > 0 {
			res.Precision += 1e-3
		}
	}}
}

// TestShrinkPreservesPredicateAndTerminates: over the first failing seeds
// of the injected-bug stream, the minimized scenario must still satisfy
// the predicate, never be larger than the input, and the whole run must
// stay within a bounded number of oracle replays (the termination
// guarantee, made concrete).
func TestShrinkPreservesPredicateAndTerminates(t *testing.T) {
	o := sparsePrecisionBug()
	cfg := DefaultConfig()
	failures := 0
	for seed := int64(1); seed <= 30 && failures < 8; seed++ {
		inst := Generate(seed, cfg)
		fs := o.Check(inst)
		if len(fs) == 0 {
			continue
		}
		failures++
		pred := o.CategoryPredicate(inst.Sound, fs[0].Category)
		min, st := Shrink(inst.Scenario, pred)
		if !pred(min) {
			t.Errorf("seed %d: shrinking lost the failure", seed)
		}
		// size() is only comparable on "custom" topologies: normalization
		// legitimately converts a named topology into its explicit link
		// list, which size() counts. Processor count must never grow.
		if min.Processors > inst.Scenario.Processors {
			t.Errorf("seed %d: shrink grew the system: %d -> %d processors", seed, inst.Scenario.Processors, min.Processors)
		}
		if inst.Scenario.Topology.Kind == "custom" && size(min) > size(inst.Scenario) {
			t.Errorf("seed %d: shrink grew the scenario: %d -> %d", seed, size(inst.Scenario), size(min))
		}
		if st.Checks > 2000 {
			t.Errorf("seed %d: %d oracle replays — shrinking is not converging", seed, st.Checks)
		}
	}
	if failures == 0 {
		t.Fatal("injected bug produced no failures to shrink")
	}
}

// TestShrinkReachesMinimalWitness: the acceptance bar — an injected
// sparse off-by-epsilon must shrink to at most 6 links. (Almost every
// seed reaches a single link; 6 is the contract.)
func TestShrinkReachesMinimalWitness(t *testing.T) {
	o := sparsePrecisionBug()
	cfg := DefaultConfig()
	shrunkOne := false
	for seed := int64(1); seed <= 20; seed++ {
		inst := Generate(seed, cfg)
		fs := o.Check(inst)
		if len(fs) == 0 {
			continue
		}
		pred := o.CategoryPredicate(inst.Sound, fs[0].Category)
		min, _ := Shrink(inst.Scenario, pred)
		if got := len(min.Topology.Pairs); got > 6 {
			t.Errorf("seed %d: shrunk witness still has %d links, want <= 6", seed, got)
		}
		shrunkOne = true
	}
	if !shrunkOne {
		t.Fatal("injected bug produced no failures to shrink")
	}
}

// TestShrinkNonFailingInputUnchanged: Shrink on a passing scenario is the
// identity — it must not "minimize" something that was never failing.
func TestShrinkNonFailingInputUnchanged(t *testing.T) {
	inst := Generate(1, DefaultConfig())
	pred := (&Oracle{}).CategoryPredicate(inst.Sound, CatSolverMismatch)
	min, st := Shrink(inst.Scenario, pred)
	if min != inst.Scenario {
		t.Error("shrink rewrote a passing scenario")
	}
	if st.Accepted != 0 || st.Checks != 1 {
		t.Errorf("expected exactly one failed predicate check, got %+v", st)
	}
}

// TestShrinkAgainstStructuralPredicate exercises the passes in isolation
// from the oracle: the predicate only demands a crash on processor 0 and
// some link touching it, so everything else must melt away.
func TestShrinkAgainstStructuralPredicate(t *testing.T) {
	pred := func(s *scenario.Scenario) bool {
		if s.Faults == nil {
			return false
		}
		hasCrash := false
		for _, c := range s.Faults.Crashes {
			if c.Proc == 0 {
				hasCrash = true
			}
		}
		if !hasCrash {
			return false
		}
		if _, err := s.Build(); err != nil {
			return false
		}
		for _, p := range s.Topology.Pairs {
			if p[0] == 0 || p[1] == 0 {
				return true
			}
		}
		// Named topologies all touch processor 0.
		return s.Topology.Kind != "custom"
	}
	cfg := DefaultConfig()
	tested := 0
	for seed := int64(1); seed <= 60 && tested < 5; seed++ {
		inst := Generate(seed, cfg)
		if !pred(inst.Scenario) {
			continue
		}
		tested++
		min, _ := Shrink(inst.Scenario, pred)
		if !pred(min) {
			t.Fatalf("seed %d: predicate lost", seed)
		}
		if len(min.Topology.Pairs) > 1 {
			t.Errorf("seed %d: %d links remain, one link suffices for this predicate", seed, len(min.Topology.Pairs))
		}
		if min.Faults == nil || len(min.Faults.Crashes) == 0 {
			t.Fatalf("seed %d: crash entry gone", seed)
		}
		if len(min.Faults.Partitions) != 0 || len(min.Faults.Byzantine) != 0 {
			t.Errorf("seed %d: irrelevant fault entries survived: %+v", seed, min.Faults)
		}
	}
	if tested == 0 {
		t.Skip("no seed produced a crash on processor 0 — widen the scan")
	}
}

// TestRoundValuesPreservesBigSeeds: the value-rounding pass walks the
// scenario as a JSON document; a 63-bit seed must come back bit-exact,
// not through a float64.
func TestRoundValuesPreservesBigSeeds(t *testing.T) {
	s := Generate(3, DefaultConfig()).Scenario
	const big = int64(1)<<62 + 3
	s.Seed = big
	c, ok := roundScenario(s, 1)
	if !ok {
		t.Skip("nothing to round in this scenario")
	}
	if c.Seed != big {
		t.Errorf("seed corrupted by rounding pass: %d, want %d", c.Seed, big)
	}
}

// TestShrunkScenarioRoundTrips: the minimized scenario must survive
// encode/parse — reproducer files are useless otherwise.
func TestShrunkScenarioRoundTrips(t *testing.T) {
	o := sparsePrecisionBug()
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 20; seed++ {
		inst := Generate(seed, cfg)
		fs := o.Check(inst)
		if len(fs) == 0 {
			continue
		}
		pred := o.CategoryPredicate(inst.Sound, fs[0].Category)
		min, _ := Shrink(inst.Scenario, pred)
		data, err := min.Encode()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := scenario.Parse(data)
		if err != nil {
			t.Fatalf("seed %d: parse: %v", seed, err)
		}
		if !pred(back) {
			t.Errorf("seed %d: failure did not survive the JSON round trip", seed)
		}
		return // one witness is enough for the round-trip property
	}
	t.Fatal("injected bug produced no failures")
}
