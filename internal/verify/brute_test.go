package verify

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/trace"
)

// admissibleShiftVector checks a full shift vector directly against the
// per-link assumptions (Lemma 5.2's right-hand side): the shifted
// execution must be locally admissible on every pair.
func admissibleShiftVector(t *testing.T, e *model.Execution, links []core.Link, shifts []float64) bool {
	t.Helper()
	shifted, err := e.Shift(shifts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := trace.CollectActual(shifted, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		if !l.A.Admits(tab.Raw(l.P, l.Q), tab.Raw(l.Q, l.P)) {
			return false
		}
	}
	// Physical non-negativity on every trafficked pair.
	nb := delay.NoBounds()
	bad := false
	tab.Pairs(func(p, q model.ProcID, _, _ trace.DirStats) {
		if !nb.Admits(tab.Raw(p, q), tab.Raw(q, p)) {
			bad = true
		}
	})
	return !bad
}

// TestGlobalShiftsBruteForce validates Theorem 5.4 end to end on tiny
// systems: the shortest-path ms(p,q) equals the empirical supremum of
// admissible relative shifts found by grid search over full shift
// vectors. This exercises Lemma 5.2 (local <-> global) and Lemma 5.3 (the
// dist construction) against nothing but the Admits predicates.
func TestGlobalShiftsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for trial := 0; trial < 6; trial++ {
		// Three processors on a line, random admissible delays.
		lb, ub := 0.1, 0.4
		bounds, err := delay.SymmetricBounds(lb, ub)
		if err != nil {
			t.Fatal(err)
		}
		starts := []float64{0, rng.Float64(), rng.Float64()}
		b := model.NewBuilder(starts)
		sendAt := 2.0
		for _, pair := range [][2]model.ProcID{{0, 1}, {1, 2}} {
			for k := 0; k < 2; k++ {
				d1 := lb + (ub-lb)*rng.Float64()
				d2 := lb + (ub-lb)*rng.Float64()
				if _, err := b.AddMessageDelay(pair[0], pair[1], sendAt+float64(k), d1); err != nil {
					t.Fatal(err)
				}
				if _, err := b.AddMessageDelay(pair[1], pair[0], sendAt+float64(k), d2); err != nil {
					t.Fatal(err)
				}
			}
		}
		e, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		links := []core.Link{
			{P: 0, Q: 1, A: bounds},
			{P: 1, Q: 2, A: bounds},
		}
		ms, err := TrueMS(e, links, core.DefaultMLSOptions())
		if err != nil {
			t.Fatal(err)
		}

		// Brute force: grid over (s1, s2) with s0 = 0; the empirical sup of
		// s_q - s_p over admissible vectors must match ms(p,q).
		const (
			span = 0.5
			step = 0.005
		)
		best := [3][3]float64{}
		for p := 0; p < 3; p++ {
			for q := 0; q < 3; q++ {
				best[p][q] = math.Inf(-1)
			}
		}
		for s1 := -span; s1 <= span; s1 += step {
			for s2 := -span; s2 <= span; s2 += step {
				shifts := []float64{0, s1, s2}
				if !admissibleShiftVector(t, e, links, shifts) {
					continue
				}
				for p := 0; p < 3; p++ {
					for q := 0; q < 3; q++ {
						if d := shifts[q] - shifts[p]; d > best[p][q] {
							best[p][q] = d
						}
					}
				}
			}
		}
		for p := 0; p < 3; p++ {
			for q := 0; q < 3; q++ {
				if p == q {
					continue
				}
				if math.IsInf(ms[p][q], 1) {
					continue // grid too small to witness unbounded shifts
				}
				// The grid discretization under-approximates by at most ~2 steps.
				if diff := ms[p][q] - best[p][q]; diff < -1e-9 || diff > 3*step {
					t.Fatalf("trial %d: ms(%d,%d) = %v but brute-force sup = %v", trial, p, q, ms[p][q], best[p][q])
				}
			}
		}
	}
}
