package verify

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/sim"
)

// TestPairBoundMatchesGroundTruth: the view-computable Result.PairBound
// equals the ground-truth per-pair rho-bar for every pair, on random
// simulated systems — the estimates fold the start times through exactly.
func TestPairBoundMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(4)
		sc := mkScenario(t, rng, n, sim.Ring(n), 0.05, 0.3, 2)
		msTrue, err := TrueMS(sc.exec, sc.links, core.DefaultMLSOptions())
		if err != nil {
			t.Fatalf("TrueMS: %v", err)
		}
		starts := sc.exec.Starts()
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				fromViews, err := sc.res.PairBound(p, q)
				if err != nil {
					t.Fatal(err)
				}
				fromTruth, err := PairRhoBar(starts, msTrue, sc.res.Corrections, p, q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(fromViews-fromTruth) > 1e-9 {
					t.Fatalf("trial %d pair (%d,%d): views %v vs truth %v", trial, p, q, fromViews, fromTruth)
				}
			}
		}
	}
}

func TestPairRhoBarValidation(t *testing.T) {
	if _, err := PairRhoBar([]float64{0, 1}, [][]float64{{0, 1}, {1, 0}}, []float64{0}, 0, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := PairRhoBar([]float64{0, 1}, [][]float64{{0, 1}, {1, 0}}, []float64{0, 0}, 0, 5); err == nil {
		t.Error("out-of-range pair accepted")
	}
	v, err := PairRhoBar([]float64{0, 1}, [][]float64{{0, 1}, {1, 0}}, []float64{0, 0}, 1, 1)
	if err != nil || v != 0 {
		t.Errorf("self pair = %v, %v", v, err)
	}
}

// TestExactCertificate: the critical cycle reported from views is a valid
// ground-truth witness that the precision is unimprovable.
func TestExactCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		n := 3 + rng.Intn(5)
		sc := mkScenario(t, rng, n, sim.Complete(n), 0.05, 0.25, 1+trial%3)
		cert, err := ExactCertificate(sc.exec, sc.links, core.DefaultMLSOptions(), sc.res)
		if err != nil {
			t.Fatalf("trial %d: ExactCertificate: %v", trial, err)
		}
		if math.Abs(cert.Mean-sc.res.Precision) > 1e-9 {
			t.Fatalf("trial %d: certificate mean %v != precision %v", trial, cert.Mean, sc.res.Precision)
		}
		if len(cert.Cycle) < 2 || cert.Cycle[0] != cert.Cycle[len(cert.Cycle)-1] {
			t.Fatalf("trial %d: malformed certificate cycle %v", trial, cert.Cycle)
		}
	}
}

func TestExactCertificateNoCycle(t *testing.T) {
	res := &core.Result{Precision: 1}
	if _, err := ExactCertificate(nil, nil, core.DefaultMLSOptions(), res); err == nil {
		t.Error("missing cycle accepted")
	}
}
