package verify

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/sim"
	"clocksync/internal/trace"
)

// scenario bundles a simulated execution with its assumption links.
type scenario struct {
	exec  *model.Execution
	links []core.Link
	tab   *trace.Table
	res   *core.Result
}

// mkScenario simulates a connected topology with symmetric uniform delays
// and bounds assumptions matching the sampler support, then synchronizes.
func mkScenario(t *testing.T, rng *rand.Rand, n int, pairs []sim.Pair, lo, hi float64, k int) *scenario {
	t.Helper()
	starts := sim.UniformStarts(rng, n, 5)
	net, err := sim.NewNetwork(starts, pairs, func(sim.Pair) sim.LinkDelays {
		return sim.Symmetric(sim.Uniform{Lo: lo, Hi: hi})
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	exec, err := sim.Run(net, sim.NewBurstFactory(k, 0.01, sim.SafeWarmup(starts)+1), sim.RunConfig{Seed: rng.Int63()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bounds, err := delay.SymmetricBounds(lo, hi)
	if err != nil {
		t.Fatalf("SymmetricBounds: %v", err)
	}
	links := make([]core.Link, 0, len(pairs))
	for _, e := range pairs {
		p, q := e.P, e.Q
		if p > q {
			p, q = q, p
		}
		links = append(links, core.Link{P: model.ProcID(p), Q: model.ProcID(q), A: bounds})
	}
	tab, err := trace.Collect(exec, false)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	res, err := core.SynchronizeSystem(n, links, tab, core.DefaultMLSOptions(), core.Options{})
	if err != nil {
		t.Fatalf("SynchronizeSystem: %v", err)
	}
	return &scenario{exec: exec, links: links, tab: tab, res: res}
}

// TestOptimalityEndToEnd is the headline reproduction test: on random
// connected systems, the algorithm's reported precision equals the true
// A_max (Lemma 4.5), equals rho-bar of its corrections (Theorem 4.6), and
// no random alternative beats it (Section 3 optimality).
func TestOptimalityEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	topologies := []struct {
		name  string
		n     int
		pairs []sim.Pair
	}{
		{"pair", 2, sim.Ring(2)},
		{"ring5", 5, sim.Ring(5)},
		{"line4", 4, sim.Line(4)},
		{"star6", 6, sim.Star(6)},
		{"complete5", 5, sim.Complete(5)},
		{"grid2x3", 6, sim.Grid(2, 3)},
	}
	for _, tt := range topologies {
		t.Run(tt.name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				sc := mkScenario(t, rng, tt.n, tt.pairs, 0.1, 0.4, 1+trial)
				cert, err := CheckOptimality(sc.exec, sc.links, core.DefaultMLSOptions(), sc.res, 200, rng.Int63())
				if err != nil {
					t.Fatalf("trial %d: CheckOptimality: %v", trial, err)
				}
				if err := cert.Ok(1e-9); err != nil {
					t.Fatalf("trial %d: %v (cert %+v)", trial, err, cert)
				}
			}
		})
	}
}

// TestOptimalityWithMixedAssumptions repeats the optimality check with a
// heterogeneous assumption mix: bounds, bias windows and lower-only links.
func TestOptimalityWithMixedAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 6
	pairs := sim.Ring(n)
	starts := sim.UniformStarts(rng, n, 3)

	delays := func(e sim.Pair) sim.LinkDelays {
		switch e.P % 3 {
		case 0:
			return sim.Symmetric(sim.Uniform{Lo: 0.2, Hi: 0.5})
		case 1:
			return sim.BiasWindow{Base: 0.3, Width: 0.1}
		default:
			return sim.Symmetric(sim.ShiftedExp{Min: 0.1, Mean: 0.2})
		}
	}
	net, err := sim.NewNetwork(starts, pairs, delays)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	exec, err := sim.Run(net, sim.NewBurstFactory(4, 0.02, sim.SafeWarmup(starts)+1), sim.RunConfig{Seed: 55})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var links []core.Link
	for _, e := range pairs {
		p, q := e.P, e.Q
		if p > q {
			p, q = q, p
		}
		var a delay.Assumption
		switch e.P % 3 {
		case 0:
			b, err := delay.SymmetricBounds(0.2, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			a = b
		case 1:
			bias, err := delay.NewRTTBias(0.1)
			if err != nil {
				t.Fatal(err)
			}
			a = bias
		default:
			lo, err := delay.LowerOnly(0.1, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			a = lo
		}
		links = append(links, core.Link{P: model.ProcID(p), Q: model.ProcID(q), A: a})
	}

	if err := CheckAdmissible(exec, links, core.DefaultMLSOptions()); err != nil {
		t.Fatalf("CheckAdmissible: %v", err)
	}

	tab, err := trace.Collect(exec, false)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	res, err := core.SynchronizeSystem(n, links, tab, core.DefaultMLSOptions(), core.Options{})
	if err != nil {
		t.Fatalf("SynchronizeSystem: %v", err)
	}
	cert, err := CheckOptimality(exec, links, core.DefaultMLSOptions(), res, 300, 99)
	if err != nil {
		t.Fatalf("CheckOptimality: %v", err)
	}
	if err := cert.Ok(1e-9); err != nil {
		t.Fatalf("%v (cert %+v)", err, cert)
	}
}

// TestAdversarialShift validates the Lemma 5.3 construction: the shifted
// execution is (a) equivalent, (b) still admissible, and (c) realizes a
// discrepancy under the optimal corrections approaching the guarantee.
func TestAdversarialShift(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sc := mkScenario(t, rng, 5, sim.Ring(5), 0.1, 0.5, 2)

	// Find the ordered pair (p,q) attaining rho-bar of the corrections.
	msTrue, err := TrueMS(sc.exec, sc.links, core.DefaultMLSOptions())
	if err != nil {
		t.Fatalf("TrueMS: %v", err)
	}
	starts := sc.exec.Starts()
	bestP, bestQ := -1, -1
	worst := math.Inf(-1)
	for p := 0; p < 5; p++ {
		for q := 0; q < 5; q++ {
			if p == q {
				continue
			}
			v := (starts[p] - sc.res.Corrections[p]) - (starts[q] - sc.res.Corrections[q]) + msTrue[p][q]
			if v > worst {
				worst, bestP, bestQ = v, p, q
			}
		}
	}

	const gamma = 0.999
	shifted, shifts, err := AdversarialShift(sc.exec, sc.links, core.DefaultMLSOptions(), model.ProcID(bestP), model.ProcID(bestQ), gamma)
	if err != nil {
		t.Fatalf("AdversarialShift: %v", err)
	}
	if !model.Equivalent(sc.exec, shifted) {
		t.Fatal("shifted execution is not equivalent")
	}
	if err := CheckAdmissible(shifted, sc.links, core.DefaultMLSOptions()); err != nil {
		t.Fatalf("shifted execution inadmissible: %v", err)
	}
	if got := shifts[bestQ] - shifts[bestP]; math.Abs(got-gamma*msTrue[bestP][bestQ]) > 1e-9 {
		t.Errorf("relative shift = %v, want %v", got, gamma*msTrue[bestP][bestQ])
	}

	// The realized discrepancy on the adversarial execution approaches the
	// guarantee; since views (hence corrections) are unchanged, it must
	// also stay within it.
	rho, err := core.Rho(shifted.Starts(), sc.res.Corrections)
	if err != nil {
		t.Fatalf("Rho: %v", err)
	}
	rhoBar, err := RhoBar(starts, msTrue, sc.res.Corrections)
	if err != nil {
		t.Fatalf("RhoBar: %v", err)
	}
	if rho > rhoBar+1e-9 {
		t.Errorf("adversarial rho %v exceeds guarantee %v", rho, rhoBar)
	}
	if rho < rhoBar-0.01*(1+math.Abs(rhoBar)) {
		t.Errorf("adversarial rho %v does not approach guarantee %v", rho, rhoBar)
	}
}

func TestAdversarialShiftErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := mkScenario(t, rng, 3, sim.Ring(3), 0.1, 0.2, 1)
	if _, _, err := AdversarialShift(sc.exec, sc.links, core.DefaultMLSOptions(), 0, 1, 1.5); err == nil {
		t.Error("gamma > 1 accepted")
	}
	if _, _, err := AdversarialShift(sc.exec, sc.links, core.DefaultMLSOptions(), 0, 9, 0.5); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestRhoBarValidation(t *testing.T) {
	if _, err := RhoBar([]float64{0, 1}, [][]float64{{0, 1}, {1, 0}}, []float64{0}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	v, err := RhoBar([]float64{3}, [][]float64{{0}}, []float64{1})
	if err != nil || v != 0 {
		t.Errorf("singleton RhoBar = %v, %v; want 0, nil", v, err)
	}
}

func TestCertificateOkDetectsViolations(t *testing.T) {
	good := &Certificate{AMaxEstimated: 1, AMaxTrue: 1, RhoBarOptimal: 1, Rho: 0.5, BestAlternative: 1.2, Alternatives: 10}
	if err := good.Ok(1e-9); err != nil {
		t.Errorf("good certificate rejected: %v", err)
	}
	cases := []struct {
		name string
		c    Certificate
		want string
	}{
		{"lemma45", Certificate{AMaxEstimated: 1, AMaxTrue: 2, RhoBarOptimal: 2, Rho: 0}, "Lemma 4.5"},
		{"theorem46", Certificate{AMaxEstimated: 1, AMaxTrue: 1, RhoBarOptimal: 2, Rho: 0}, "Theorem 4.6"},
		{"rho", Certificate{AMaxEstimated: 1, AMaxTrue: 1, RhoBarOptimal: 1, Rho: 3}, "exceeds"},
		{"optimality", Certificate{AMaxEstimated: 1, AMaxTrue: 1, RhoBarOptimal: 1, Rho: 0.5, BestAlternative: 0.2, Alternatives: 5}, "optimality"},
		{"finiteness", Certificate{AMaxEstimated: math.Inf(1), AMaxTrue: 1}, "finiteness"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Ok(1e-9)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Ok = %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestCheckAdmissibleCatchesViolation(t *testing.T) {
	// Build an execution whose delays violate the declared bounds.
	b := model.NewBuilder([]float64{0, 0})
	if _, err := b.AddMessageDelay(0, 1, 1, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddMessageDelay(1, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
	exec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tight, err := delay.SymmetricBounds(0, 1) // delays are 5: violated
	if err != nil {
		t.Fatal(err)
	}
	links := []core.Link{{P: 0, Q: 1, A: tight}}
	if err := CheckAdmissible(exec, links, core.DefaultMLSOptions()); err == nil {
		t.Error("violation not detected")
	}
}

// TestRhoBarLowerBoundedByRho: on the observed execution itself, realized
// discrepancy never exceeds rho-bar for any correction vector.
func TestRhoBarLowerBoundedByRho(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sc := mkScenario(t, rng, 4, sim.Complete(4), 0.05, 0.3, 2)
	msTrue, err := TrueMS(sc.exec, sc.links, core.DefaultMLSOptions())
	if err != nil {
		t.Fatalf("TrueMS: %v", err)
	}
	starts := sc.exec.Starts()
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, 4)
		for i := range x {
			x[i] = rng.Float64()*4 - 2
		}
		rho, err := core.Rho(starts, x)
		if err != nil {
			t.Fatal(err)
		}
		rhoBar, err := RhoBar(starts, msTrue, x)
		if err != nil {
			t.Fatal(err)
		}
		if rho > rhoBar+1e-9 {
			t.Fatalf("trial %d: rho %v > rho-bar %v", trial, rho, rhoBar)
		}
	}
}
