package verify

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/sim"
	"clocksync/internal/trace"
)

// TestSoakLargeRandomSystems pushes the whole stack on larger random
// topologies with heterogeneous assumptions: end-to-end optimality
// certificates, adversarial shift admissibility, and centered-correction
// agreement. Skipped under -short.
func TestSoakLargeRandomSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 4; trial++ {
		n := 16 + rng.Intn(9) // 16..24
		pairs := sim.RandomConnected(rng, n, 0.12)
		starts := sim.UniformStarts(rng, n, 4)

		delays := func(e sim.Pair) sim.LinkDelays {
			switch (e.P + e.Q) % 3 {
			case 0:
				return sim.Symmetric(sim.Uniform{Lo: 0.05, Hi: 0.25})
			case 1:
				return sim.BiasWindow{Base: 0.1 + 0.2*rng.Float64(), Width: 0.03}
			default:
				return sim.Symmetric(sim.ShiftedExp{Min: 0.04, Mean: 0.1})
			}
		}
		assume := func(e sim.Pair) delay.Assumption {
			switch (e.P + e.Q) % 3 {
			case 0:
				a, err := delay.SymmetricBounds(0.05, 0.25)
				if err != nil {
					t.Fatal(err)
				}
				return a
			case 1:
				a, err := delay.NewRTTBias(0.03)
				if err != nil {
					t.Fatal(err)
				}
				return a
			default:
				a, err := delay.LowerOnly(0.04, 0.04)
				if err != nil {
					t.Fatal(err)
				}
				return a
			}
		}

		net, err := sim.NewNetwork(starts, pairs, delays)
		if err != nil {
			t.Fatalf("trial %d: NewNetwork: %v", trial, err)
		}
		exec, err := sim.Run(net, sim.NewBurstFactory(3, 0.01, sim.SafeWarmup(starts)+0.5),
			sim.RunConfig{Seed: rng.Int63()})
		if err != nil {
			t.Fatalf("trial %d: Run: %v", trial, err)
		}
		var links []core.Link
		for _, e := range pairs {
			p, q := e.P, e.Q
			if p > q {
				p, q = q, p
			}
			links = append(links, core.Link{P: model.ProcID(p), Q: model.ProcID(q), A: assume(sim.Pair{P: p, Q: q})})
		}
		if err := CheckAdmissible(exec, links, core.DefaultMLSOptions()); err != nil {
			t.Fatalf("trial %d: admissibility: %v", trial, err)
		}
		tab, err := trace.Collect(exec, false)
		if err != nil {
			t.Fatalf("trial %d: Collect: %v", trial, err)
		}
		res, err := core.SynchronizeSystem(n, links, tab, core.DefaultMLSOptions(), core.Options{})
		if err != nil {
			t.Fatalf("trial %d: Synchronize: %v", trial, err)
		}
		if math.IsInf(res.Precision, 1) {
			t.Fatalf("trial %d: infinite precision on connected system", trial)
		}
		cert, err := CheckOptimality(exec, links, core.DefaultMLSOptions(), res, 300, rng.Int63())
		if err != nil {
			t.Fatalf("trial %d: CheckOptimality: %v", trial, err)
		}
		if err := cert.Ok(1e-9); err != nil {
			t.Fatalf("trial %d: %v (cert %+v)", trial, err, cert)
		}

		// Centered corrections: same guarantee, feasible, usually tighter
		// realized error.
		centered, err := core.SynchronizeSystem(n, links, tab, core.DefaultMLSOptions(), core.Options{Centered: true})
		if err != nil {
			t.Fatalf("trial %d: centered: %v", trial, err)
		}
		if math.Abs(centered.Precision-res.Precision) > 1e-9 {
			t.Fatalf("trial %d: centered precision %v != %v", trial, centered.Precision, res.Precision)
		}
		rhoC, err := core.Rho(starts, centered.Corrections)
		if err != nil {
			t.Fatal(err)
		}
		if rhoC > centered.Precision+1e-9 {
			t.Fatalf("trial %d: centered rho %v exceeds precision %v", trial, rhoC, centered.Precision)
		}

		// Adversarial construction on the dominant pair.
		msTrue, err := TrueMS(exec, links, core.DefaultMLSOptions())
		if err != nil {
			t.Fatal(err)
		}
		bestP, bestQ, worst := -1, -1, math.Inf(-1)
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if p == q {
					continue
				}
				v := (starts[p] - res.Corrections[p]) - (starts[q] - res.Corrections[q]) + msTrue[p][q]
				if v > worst {
					worst, bestP, bestQ = v, p, q
				}
			}
		}
		shifted, _, err := AdversarialShift(exec, links, core.DefaultMLSOptions(), model.ProcID(bestP), model.ProcID(bestQ), 0.995)
		if err != nil {
			t.Fatalf("trial %d: AdversarialShift: %v", trial, err)
		}
		if !model.Equivalent(exec, shifted) {
			t.Fatalf("trial %d: adversarial execution not equivalent", trial)
		}
		if err := CheckAdmissible(shifted, links, core.DefaultMLSOptions()); err != nil {
			t.Fatalf("trial %d: adversarial execution inadmissible: %v", trial, err)
		}
	}
}
