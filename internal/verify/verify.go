// Package verify checks the paper's optimality claims on concrete
// simulated executions. Unlike the synchronizer, it is allowed to see the
// ground truth (actual delays and start times), so it can compute:
//
//   - the *true* maximal local/global shifts (Lemmas 6.2/6.5 applied to
//     actual delays, then Theorem 5.4's shortest-path computation);
//   - rho-bar(x), the guaranteed precision of any correction vector x on
//     the instance (the sup in Section 3, in closed form via Lemma 4.3);
//   - adversarial equivalent executions that realize (arbitrarily closely)
//     the guaranteed precision, following the shift construction of
//     Lemma 5.3.
//
// Together these verify Theorem 4.6 end to end: the algorithm's reported
// precision equals the true A_max, equals rho-bar of its corrections, and
// no other correction vector has smaller rho-bar.
package verify

import (
	"fmt"
	"math"
	"math/rand"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/trace"
)

// TrueMLS computes the matrix of actual maximal local shifts of the
// execution under the given per-link assumptions, using real delays.
func TrueMLS(e *model.Execution, links []core.Link, opts core.MLSOptions) ([][]float64, error) {
	tab, err := trace.CollectActual(e, false)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	mls, err := core.MLSMatrix(e.N(), links, tab, opts)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	return mls, nil
}

// TrueMS computes the matrix of actual maximal global shifts (Theorem 5.4).
func TrueMS(e *model.Execution, links []core.Link, opts core.MLSOptions) ([][]float64, error) {
	mls, err := TrueMLS(e, links, opts)
	if err != nil {
		return nil, err
	}
	ms, err := core.GlobalEstimates(mls) // same shortest-path computation
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	return ms, nil
}

// RhoBar evaluates the guaranteed precision of corrections x on an
// execution with the given true start times and true maximal global
// shifts:
//
//	rho-bar(x) = max over ordered pairs (p,q) of
//	             (S_p - x_p) - (S_q - x_q) + ms(p,q).
//
// This is the supremum over all admissible executions equivalent to the
// observed one of the realized discrepancy (Lemma 4.3 made tight).
func RhoBar(starts []float64, msTrue [][]float64, x []float64) (float64, error) {
	n := len(starts)
	if len(x) != n || len(msTrue) != n {
		return 0, fmt.Errorf("verify: dimension mismatch (starts=%d, ms=%d, x=%d)", n, len(msTrue), len(x))
	}
	worst := math.Inf(-1)
	if n <= 1 {
		return 0, nil
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			v := (starts[p] - x[p]) - (starts[q] - x[q]) + msTrue[p][q]
			if v > worst {
				worst = v
			}
		}
	}
	return worst, nil
}

// Certificate summarizes an optimality check of one synchronization run.
type Certificate struct {
	// AMaxEstimated is the precision the algorithm reported from views.
	AMaxEstimated float64
	// AMaxTrue is A_max computed from actual delays; Lemma 4.5 says the
	// two must coincide.
	AMaxTrue float64
	// RhoBarOptimal is rho-bar of the algorithm's corrections; Theorem 4.6
	// says it equals A_max.
	RhoBarOptimal float64
	// Rho is the realized discrepancy on the observed execution; always
	// <= RhoBarOptimal.
	Rho float64
	// BestAlternative is the smallest rho-bar among the random alternative
	// correction vectors tried; instance optimality requires it to be
	// >= AMaxTrue (up to noise).
	BestAlternative float64
	// Alternatives is the number of alternative vectors evaluated.
	Alternatives int
}

// Ok reports whether the certificate is internally consistent within tol.
func (c *Certificate) Ok(tol float64) error {
	if math.IsInf(c.AMaxEstimated, 1) != math.IsInf(c.AMaxTrue, 1) {
		return fmt.Errorf("verify: estimated A_max %v vs true %v disagree about finiteness", c.AMaxEstimated, c.AMaxTrue)
	}
	if !math.IsInf(c.AMaxTrue, 1) {
		if math.Abs(c.AMaxEstimated-c.AMaxTrue) > tol {
			return fmt.Errorf("verify: Lemma 4.5 violated: estimated A_max %v != true %v", c.AMaxEstimated, c.AMaxTrue)
		}
		if math.Abs(c.RhoBarOptimal-c.AMaxTrue) > tol {
			return fmt.Errorf("verify: Theorem 4.6 violated: rho-bar %v != A_max %v", c.RhoBarOptimal, c.AMaxTrue)
		}
		if c.Rho > c.RhoBarOptimal+tol {
			return fmt.Errorf("verify: realized rho %v exceeds guarantee %v", c.Rho, c.RhoBarOptimal)
		}
		if c.Alternatives > 0 && c.BestAlternative < c.AMaxTrue-tol {
			return fmt.Errorf("verify: optimality violated: alternative with rho-bar %v < A_max %v", c.BestAlternative, c.AMaxTrue)
		}
	}
	return nil
}

// CheckOptimality runs the whole verification for a synchronization result
// on its execution: Lemma 4.5 (estimates suffice), Theorem 4.6 (achieved
// precision), and instance optimality against `trials` random
// perturbations of the correction vector.
func CheckOptimality(e *model.Execution, links []core.Link, mopts core.MLSOptions, res *core.Result, trials int, seed int64) (*Certificate, error) {
	starts := e.Starts()
	msTrue, err := TrueMS(e, links, mopts)
	if err != nil {
		return nil, err
	}
	n := e.N()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	aTrue, _ := core.AMax(msTrue, all)
	if len(res.Components) != 1 {
		aTrue = math.Inf(1)
	}

	cert := &Certificate{
		AMaxEstimated: res.Precision,
		AMaxTrue:      aTrue,
	}
	rb, err := RhoBar(starts, msTrue, res.Corrections)
	if err != nil {
		return nil, err
	}
	cert.RhoBarOptimal = rb
	rho, err := core.Rho(starts, res.Corrections)
	if err != nil {
		return nil, err
	}
	cert.Rho = rho

	if trials > 0 && !math.IsInf(aTrue, 1) {
		rng := rand.New(rand.NewSource(seed))
		best := math.Inf(1)
		scale := 1 + math.Abs(aTrue)
		for i := 0; i < trials; i++ {
			alt := make([]float64, n)
			for j := range alt {
				alt[j] = res.Corrections[j] + (rng.Float64()*2-1)*scale
			}
			v, err := RhoBar(starts, msTrue, alt)
			if err != nil {
				return nil, err
			}
			if v < best {
				best = v
			}
		}
		cert.BestAlternative = best
		cert.Alternatives = trials
	}
	return cert, nil
}

// AdversarialShift constructs, per Lemma 5.3, a shift vector that moves
// processor q as far from p as the true local constraints allow (scaled by
// gamma in (0,1) to stay strictly admissible), and returns the shifted
// execution. The shifted execution is equivalent to e, remains admissible
// under the links' assumptions, and realizes a discrepancy approaching the
// guarantee as gamma -> 1.
func AdversarialShift(e *model.Execution, links []core.Link, mopts core.MLSOptions, p, q model.ProcID, gamma float64) (*model.Execution, []float64, error) {
	if gamma <= 0 || gamma >= 1 {
		return nil, nil, fmt.Errorf("verify: gamma %v outside (0,1)", gamma)
	}
	mls, err := TrueMLS(e, links, mopts)
	if err != nil {
		return nil, nil, err
	}
	ms, err := core.GlobalEstimates(mls)
	if err != nil {
		return nil, nil, err
	}
	n := e.N()
	if int(p) < 0 || int(p) >= n || int(q) < 0 || int(q) >= n {
		return nil, nil, fmt.Errorf("verify: pair (p%d,p%d) out of range", p, q)
	}
	if math.IsInf(ms[p][q], 1) {
		return nil, nil, fmt.Errorf("verify: ms(p%d,p%d) is infinite; no finite adversarial shift", p, q)
	}
	// Lemma 5.3: s_i = gamma * dist_mls(p, i) is a globally admissible
	// shift vector with s_q - s_p = gamma * ms(p,q). The construction
	// needs every processor reachable from p under finite local shifts.
	shifts := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.IsInf(ms[p][i], 1) {
			return nil, nil, fmt.Errorf("verify: p%d unreachable from p%d under finite shifts; adversarial construction needs one sync component", i, p)
		}
		shifts[i] = gamma * ms[p][i]
	}
	shifted, err := e.Shift(shifts)
	if err != nil {
		return nil, nil, err
	}
	return shifted, shifts, nil
}

// CheckAdmissible verifies that an execution's actual delays satisfy every
// link assumption (and non-negativity when the options request it).
func CheckAdmissible(e *model.Execution, links []core.Link, mopts core.MLSOptions) error {
	tab, err := trace.CollectActual(e, true)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	for _, l := range links {
		if err := l.Validate(e.N()); err != nil {
			return err
		}
		pq := tab.Raw(l.P, l.Q)
		qp := tab.Raw(l.Q, l.P)
		if !l.A.Admits(pq, qp) {
			return fmt.Errorf("verify: link (p%d,p%d) violates %v", l.P, l.Q, l.A)
		}
	}
	if mopts.AssumeNonnegative {
		nb := delay.NoBounds()
		var bad error
		tab.Pairs(func(p, q model.ProcID, pqStats, qpStats trace.DirStats) {
			if bad != nil {
				return
			}
			if !nb.Admits(tab.Raw(p, q), tab.Raw(q, p)) {
				bad = fmt.Errorf("verify: negative delay on (p%d,p%d)", p, q)
			}
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

// PairRhoBar evaluates the guaranteed per-pair discrepancy of corrections
// x between p and q from ground truth:
//
//	max( ms(p,q) + (S_p - x_p) - (S_q - x_q),
//	     ms(q,p) + (S_q - x_q) - (S_p - x_p) ).
//
// It equals Result.PairBound computed from views (the estimates fold the
// start times through exactly), which the tests verify.
func PairRhoBar(starts []float64, msTrue [][]float64, x []float64, p, q int) (float64, error) {
	n := len(starts)
	if len(x) != n || len(msTrue) != n {
		return 0, fmt.Errorf("verify: dimension mismatch")
	}
	if p < 0 || p >= n || q < 0 || q >= n {
		return 0, fmt.Errorf("verify: pair (%d,%d) out of range", p, q)
	}
	if p == q {
		return 0, nil
	}
	fwd := msTrue[p][q] + (starts[p] - x[p]) - (starts[q] - x[q])
	rev := msTrue[q][p] + (starts[q] - x[q]) - (starts[p] - x[p])
	return math.Max(fwd, rev), nil
}

// CycleCertificate is an exact optimality certificate: a cyclic processor
// sequence whose mean true maximal shift equals the claimed precision. By
// Theorem 4.4 this proves NO correction function can guarantee less — a
// witness stronger than any amount of random alternative search.
type CycleCertificate struct {
	Cycle []int
	Mean  float64
}

// ExactCertificate validates the synchronizer's critical cycle against
// ground truth: the cycle's mean of TRUE maximal global shifts must equal
// the reported precision (Lemma 4.5 says estimated and true cycle means
// coincide).
func ExactCertificate(e *model.Execution, links []core.Link, mopts core.MLSOptions, res *core.Result) (*CycleCertificate, error) {
	if res.CriticalCycle == nil {
		return nil, fmt.Errorf("verify: result carries no critical cycle")
	}
	msTrue, err := TrueMS(e, links, mopts)
	if err != nil {
		return nil, err
	}
	cyc := res.CriticalCycle
	k := len(cyc) - 1
	if k < 1 || cyc[0] != cyc[k] {
		return nil, fmt.Errorf("verify: malformed critical cycle %v", cyc)
	}
	total := 0.0
	for i := 0; i < k; i++ {
		w := msTrue[cyc[i]][cyc[i+1]]
		if math.IsInf(w, 1) {
			return nil, fmt.Errorf("verify: critical cycle uses unreachable pair (p%d,p%d)", cyc[i], cyc[i+1])
		}
		total += w
	}
	mean := total / float64(k)
	if math.Abs(mean-res.Precision) > 1e-9*(1+math.Abs(res.Precision)) {
		return nil, fmt.Errorf("verify: critical cycle mean %v != claimed precision %v", mean, res.Precision)
	}
	return &CycleCertificate{Cycle: append([]int(nil), cyc...), Mean: mean}, nil
}
