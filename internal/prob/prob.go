// Package prob extends the framework to the probabilistic delay model the
// paper poses as an open question in Section 7: "achieve optimal clock
// synchronization in systems where the probabilistic properties of the
// message delay distribution are known".
//
// The construction follows the paper's own suggestion that the
// per-instance optimality notion is the right tool: given a known delay
// distribution per link direction, choose quantile bounds
//
//	[ Q(delta), Q(1-delta) ]  with  delta = epsilon / (2 * M)
//
// where M bounds the number of messages per direction. By a union bound,
// ALL delays fall inside the bounds with probability at least 1-epsilon,
// so the derived Bounds assumption — and with it every precision guarantee
// of the optimal algorithm — holds with confidence 1-epsilon. Smaller
// epsilon widens the bounds and costs precision; the trade-off is
// quantified by experiment P1.
package prob

import (
	"fmt"
	"math"

	"clocksync/internal/delay"
)

// Distribution is a delay distribution with a known quantile function
// (inverse CDF) supported on [0, +inf).
type Distribution interface {
	// Quantile returns the p-quantile, p in (0,1).
	Quantile(p float64) float64
	// String describes the distribution.
	String() string
}

// Uniform is the uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

var _ Distribution = Uniform{}

// Quantile returns Lo + p*(Hi-Lo).
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

func (u Uniform) String() string { return fmt.Sprintf("uniform(%g,%g)", u.Lo, u.Hi) }

// ShiftedExp is Min plus an exponential with the given mean.
type ShiftedExp struct {
	Min  float64
	Mean float64
}

var _ Distribution = ShiftedExp{}

// Quantile returns Min - Mean*ln(1-p).
func (s ShiftedExp) Quantile(p float64) float64 { return s.Min - s.Mean*math.Log(1-p) }

func (s ShiftedExp) String() string { return fmt.Sprintf("shiftedExp(min=%g,mean=%g)", s.Min, s.Mean) }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma^2)). A
// realistic positive-support model for network delays.
type LogNormal struct {
	Mu, Sigma float64
}

var _ Distribution = LogNormal{}

// Quantile returns exp(Mu + Sigma*sqrt(2)*erfinv(2p-1)).
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*math.Sqrt2*math.Erfinv(2*p-1))
}

func (l LogNormal) String() string { return fmt.Sprintf("logNormal(mu=%g,sigma=%g)", l.Mu, l.Sigma) }

// Pareto is the Pareto distribution with scale Xm and shape Alpha: a
// heavy-tailed model where upper quantiles explode as epsilon shrinks.
type Pareto struct {
	Xm, Alpha float64
}

var _ Distribution = Pareto{}

// Quantile returns Xm * (1-p)^(-1/Alpha).
func (pa Pareto) Quantile(p float64) float64 { return pa.Xm * math.Pow(1-p, -1/pa.Alpha) }

func (pa Pareto) String() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", pa.Xm, pa.Alpha) }

// validate checks basic sanity of a distribution at representative
// quantiles.
func validate(d Distribution) error {
	if d == nil {
		return fmt.Errorf("prob: nil distribution")
	}
	lo, mid, hi := d.Quantile(0.01), d.Quantile(0.5), d.Quantile(0.99)
	if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 {
		return fmt.Errorf("prob: %v has invalid quantiles (q01=%v q99=%v)", d, lo, hi)
	}
	if !(lo <= mid && mid <= hi) {
		return fmt.Errorf("prob: %v quantile function is not monotone", d)
	}
	return nil
}

// ConfidenceBounds derives a Bounds assumption that holds with probability
// at least 1-epsilon for up to maxMessages messages in EACH direction,
// assuming delays are independently drawn from the given distributions.
func ConfidenceBounds(pq, qp Distribution, maxMessages int, epsilon float64) (delay.Bounds, error) {
	if maxMessages < 1 {
		return delay.Bounds{}, fmt.Errorf("prob: maxMessages = %d, want >= 1", maxMessages)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return delay.Bounds{}, fmt.Errorf("prob: epsilon = %v, want (0,1)", epsilon)
	}
	if err := validate(pq); err != nil {
		return delay.Bounds{}, err
	}
	if err := validate(qp); err != nil {
		return delay.Bounds{}, err
	}
	// Union bound over 2*maxMessages samples and two tails per sample.
	deltaPerTail := epsilon / float64(4*maxMessages)
	mk := func(d Distribution) (delay.Range, error) {
		lo := d.Quantile(deltaPerTail)
		hi := d.Quantile(1 - deltaPerTail)
		if lo < 0 {
			lo = 0
		}
		if hi < lo {
			return delay.Range{}, fmt.Errorf("prob: %v produced empty range [%v,%v]", d, lo, hi)
		}
		return delay.Range{LB: lo, UB: hi}, nil
	}
	rpq, err := mk(pq)
	if err != nil {
		return delay.Bounds{}, err
	}
	rqp, err := mk(qp)
	if err != nil {
		return delay.Bounds{}, err
	}
	return delay.NewBounds(rpq, rqp)
}

// Failure bounds the probability that ConfidenceBounds' assumption is
// violated in a run with exactly mPQ and mQP messages per direction; it is
// the union-bound value, computed for reporting.
func Failure(maxMessages, mPQ, mQP int, epsilon float64) float64 {
	perSampleBothTails := epsilon / float64(2*maxMessages)
	return math.Min(1, float64(mPQ+mQP)*perSampleBothTails)
}
