package prob

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/trace"
)

func TestQuantileMonotone(t *testing.T) {
	dists := []Distribution{
		Uniform{Lo: 0.1, Hi: 0.5},
		ShiftedExp{Min: 0.05, Mean: 0.2},
		LogNormal{Mu: -2, Sigma: 0.5},
		Pareto{Xm: 0.01, Alpha: 2.5},
	}
	ps := []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}
	for _, d := range dists {
		prev := math.Inf(-1)
		for _, p := range ps {
			q := d.Quantile(p)
			if math.IsNaN(q) || q < 0 {
				t.Errorf("%v: Quantile(%v) = %v", d, p, q)
			}
			if q < prev {
				t.Errorf("%v: quantile not monotone at p=%v (%v < %v)", d, p, q, prev)
			}
			prev = q
		}
	}
}

func TestQuantileClosedForms(t *testing.T) {
	if got := (Uniform{Lo: 1, Hi: 3}).Quantile(0.5); got != 2 {
		t.Errorf("uniform median = %v, want 2", got)
	}
	// Exponential median = Min + Mean*ln 2.
	want := 0.1 + 0.2*math.Ln2
	if got := (ShiftedExp{Min: 0.1, Mean: 0.2}).Quantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("exp median = %v, want %v", got, want)
	}
	// Log-normal median = exp(mu).
	if got := (LogNormal{Mu: -1, Sigma: 0.7}).Quantile(0.5); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Errorf("lognormal median = %v, want %v", got, math.Exp(-1))
	}
	// Pareto median = xm * 2^(1/alpha).
	if got := (Pareto{Xm: 1, Alpha: 2}).Quantile(0.5); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("pareto median = %v, want sqrt(2)", got)
	}
}

// TestQuantileMatchesEmpirical: the inverse-CDF sampler's empirical
// quantiles converge to the analytic ones.
func TestQuantileMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dists := []Distribution{
		Uniform{Lo: 0.1, Hi: 0.5},
		ShiftedExp{Min: 0.05, Mean: 0.2},
		LogNormal{Mu: -2, Sigma: 0.5},
	}
	const nSamples = 20000
	for _, d := range dists {
		s := Sampler{D: d}
		samples := make([]float64, nSamples)
		for i := range samples {
			samples[i] = s.Sample(rng)
		}
		sort.Float64s(samples)
		for _, p := range []float64{0.1, 0.5, 0.9} {
			emp := samples[int(p*nSamples)]
			ana := d.Quantile(p)
			if math.Abs(emp-ana) > 0.05*(ana+0.01) {
				t.Errorf("%v: empirical q%v = %v, analytic %v", d, p, emp, ana)
			}
		}
	}
}

func TestConfidenceBoundsValidation(t *testing.T) {
	u := Uniform{Lo: 0, Hi: 1}
	if _, err := ConfidenceBounds(u, u, 0, 0.1); err == nil {
		t.Error("maxMessages 0 accepted")
	}
	if _, err := ConfidenceBounds(u, u, 1, 0); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := ConfidenceBounds(u, u, 1, 1); err == nil {
		t.Error("epsilon 1 accepted")
	}
	if _, err := ConfidenceBounds(nil, u, 1, 0.1); err == nil {
		t.Error("nil distribution accepted")
	}
}

func TestConfidenceBoundsWiden(t *testing.T) {
	d := ShiftedExp{Min: 0.05, Mean: 0.2}
	b1, err := ConfidenceBounds(d, d, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ConfidenceBounds(d, d, 8, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !(b2.PQ.UB > b1.PQ.UB && b2.PQ.LB <= b1.PQ.LB) {
		t.Errorf("smaller epsilon did not widen bounds: %v vs %v", b1.PQ, b2.PQ)
	}
	b3, err := ConfidenceBounds(d, d, 64, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(b3.PQ.UB > b1.PQ.UB) {
		t.Errorf("more messages did not widen bounds: %v vs %v", b1.PQ, b3.PQ)
	}
}

// TestConfidenceCoverage is the statistical heart: across many runs with
// delays drawn from the declared distribution, the fraction of runs where
// the assumption is violated (some delay escapes the bounds) stays below
// epsilon, and whenever the assumption holds, the realized error respects
// the reported precision.
func TestConfidenceCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dist := ShiftedExp{Min: 0.02, Mean: 0.1}
	const (
		epsilon = 0.1
		k       = 8 // messages per direction
		runs    = 400
	)
	bounds, err := ConfidenceBounds(dist, dist, k, epsilon)
	if err != nil {
		t.Fatal(err)
	}
	sampler := Sampler{D: dist}
	violated, exceeded := 0, 0
	for run := 0; run < runs; run++ {
		skew := rng.Float64()*2 - 1
		starts := []float64{0, skew}
		b := model.NewBuilder(starts)
		admissible := true
		for i := 0; i < k; i++ {
			tm := 2.0 + float64(i)
			d01 := sampler.Sample(rng)
			d10 := sampler.Sample(rng)
			if !bounds.PQ.Contains(d01) || !bounds.QP.Contains(d10) {
				admissible = false
			}
			if _, err := b.AddMessageDelay(0, 1, tm, d01); err != nil {
				t.Fatal(err)
			}
			if _, err := b.AddMessageDelay(1, 0, tm, d10); err != nil {
				t.Fatal(err)
			}
		}
		exec, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !admissible {
			violated++
			continue
		}
		tab, err := trace.Collect(exec, false)
		if err != nil {
			t.Fatal(err)
		}
		links := []core.Link{{P: 0, Q: 1, A: bounds}}
		res, err := core.SynchronizeSystem(2, links, tab, core.DefaultMLSOptions(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rho, err := core.Rho(starts, res.Corrections)
		if err != nil {
			t.Fatal(err)
		}
		if rho > res.Precision+1e-9 {
			exceeded++
		}
	}
	// The union bound is nearly tight for exponential tails, so the
	// expected violation rate is close to epsilon; allow 3-sigma binomial
	// sampling slack above the budget.
	slack := 3 * math.Sqrt(epsilon*(1-epsilon)/runs)
	if rate := float64(violated) / runs; rate > epsilon+slack {
		t.Errorf("assumption violated in %.1f%% of runs, budget %.1f%%+%.1f%%", 100*rate, 100*epsilon, 100*slack)
	}
	if exceeded != 0 {
		t.Errorf("%d admissible runs exceeded the reported precision", exceeded)
	}
}

func TestFailureBound(t *testing.T) {
	if got := Failure(8, 8, 8, 0.1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Failure at budget = %v, want 0.1", got)
	}
	if got := Failure(8, 4, 4, 0.1); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("Failure at half budget = %v, want 0.05", got)
	}
	if got := Failure(1, 100, 100, 0.5); got != 1 {
		t.Errorf("Failure clamps at 1, got %v", got)
	}
}

// TestDeltaPlacementQuick: for any valid epsilon and count, the derived
// range contains the distribution's bulk (25th..75th percentile).
func TestDeltaPlacementQuick(t *testing.T) {
	d := LogNormal{Mu: -2, Sigma: 0.4}
	f := func(rawEps uint8, rawK uint8) bool {
		eps := 0.001 + float64(rawEps)/256*0.5
		k := 1 + int(rawK)%64
		b, err := ConfidenceBounds(d, d, k, eps)
		if err != nil {
			return false
		}
		return b.PQ.Contains(d.Quantile(0.25)) && b.PQ.Contains(d.Quantile(0.75))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplerSupport(t *testing.T) {
	lo, hi := Sampler{D: Uniform{Lo: 0.1, Hi: 0.2}}.Support()
	if lo < 0.09 || hi > 0.21 {
		t.Errorf("uniform support = [%v,%v]", lo, hi)
	}
	_, hiP := Sampler{D: Pareto{Xm: 0.01, Alpha: 0.8}}.Support()
	if !math.IsInf(hiP, 1) {
		t.Errorf("heavy-tail support hi = %v, want +Inf", hiP)
	}
}

var _ = delay.Bounds{} // keep the dependency explicit for godoc linking

func TestDistributionStrings(t *testing.T) {
	tests := []struct {
		d    Distribution
		want string
	}{
		{Uniform{Lo: 0.1, Hi: 0.2}, "uniform(0.1,0.2)"},
		{ShiftedExp{Min: 0.1, Mean: 0.2}, "shiftedExp(min=0.1,mean=0.2)"},
		{LogNormal{Mu: -1, Sigma: 0.5}, "logNormal(mu=-1,sigma=0.5)"},
		{Pareto{Xm: 0.01, Alpha: 2}, "pareto(xm=0.01,alpha=2)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	s := Sampler{D: Uniform{Lo: 0, Hi: 1}}
	if got := s.String(); got != "invCDF(uniform(0,1))" {
		t.Errorf("Sampler.String() = %q", got)
	}
}

// negQuantile is a deliberately broken distribution for validation tests.
type negQuantile struct{}

func (negQuantile) Quantile(p float64) float64 { return -1 }
func (negQuantile) String() string             { return "neg" }

// nonMonotone breaks the monotonicity requirement.
type nonMonotone struct{}

func (nonMonotone) Quantile(p float64) float64 { return 1 - p }
func (nonMonotone) String() string             { return "nonmono" }

func TestConfidenceBoundsRejectsBrokenDistributions(t *testing.T) {
	u := Uniform{Lo: 0, Hi: 1}
	if _, err := ConfidenceBounds(negQuantile{}, u, 4, 0.1); err == nil {
		t.Error("negative-quantile distribution accepted")
	}
	if _, err := ConfidenceBounds(u, nonMonotone{}, 4, 0.1); err == nil {
		t.Error("non-monotone distribution accepted")
	}
}

func TestSamplerClampsNegative(t *testing.T) {
	s := Sampler{D: negQuantile{}}
	rng := rand.New(rand.NewSource(1))
	if got := s.Sample(rng); got != 0 {
		t.Errorf("Sample = %v, want clamp to 0", got)
	}
	lo, _ := s.Support()
	if lo != 0 {
		t.Errorf("Support lo = %v, want clamp to 0", lo)
	}
}
