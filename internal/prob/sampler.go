package prob

import (
	"math"
	"math/rand"

	"clocksync/internal/sim"
)

// Sampler adapts a Distribution to the simulator's Sampler interface via
// inverse-CDF sampling, so experiments draw from exactly the distribution
// the assumption was derived from.
type Sampler struct {
	D Distribution
}

var _ sim.Sampler = Sampler{}

// Sample draws by inverting a uniform variate.
func (s Sampler) Sample(rng *rand.Rand) float64 {
	// Avoid p == 0 and p == 1, where heavy-tailed quantiles blow up.
	p := rng.Float64()
	if p <= 0 {
		p = math.SmallestNonzeroFloat64
	}
	if p >= 1 {
		p = 1 - 1e-16
	}
	d := s.D.Quantile(p)
	if d < 0 {
		return 0
	}
	return d
}

// Support returns the distribution's full support hull via extreme
// quantiles (conservative; exact for bounded distributions).
func (s Sampler) Support() (float64, float64) {
	lo := s.D.Quantile(1e-12)
	if lo < 0 {
		lo = 0
	}
	hi := s.D.Quantile(1 - 1e-12)
	if hi < lo {
		hi = lo
	}
	// Heavy tails: report +Inf beyond a generous cutoff so callers do not
	// mistake a 1-1e-12 quantile for a hard bound.
	if s.D.Quantile(1-1e-12) > 1e6*s.D.Quantile(0.5) {
		return lo, math.Inf(1)
	}
	return lo, hi
}

func (s Sampler) String() string { return "invCDF(" + s.D.String() + ")" }
