package trace

import (
	"encoding/json"
	"fmt"

	"clocksync/internal/model"
)

// tableJSON is the wire form of a Table: only non-empty directed pairs are
// serialized, as statistics (raw samples are not persisted).
type tableJSON struct {
	Processors int         `json:"processors"`
	Pairs      []pairStats `json:"pairs"`
}

type pairStats struct {
	From  model.ProcID `json:"from"`
	To    model.ProcID `json:"to"`
	Count int          `json:"count"`
	Min   float64      `json:"min"`
	Max   float64      `json:"max"`
}

// MarshalJSON encodes the table's statistics. Raw samples (if retained)
// are not included; a decoded table always has raw retention off.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Processors: t.n}
	for p := 0; p < t.n; p++ {
		for q := 0; q < t.n; q++ {
			st := t.stats[p][q]
			if st.Empty() {
				continue
			}
			out.Pairs = append(out.Pairs, pairStats{
				From: model.ProcID(p), To: model.ProcID(q),
				Count: st.Count, Min: st.Min, Max: st.Max,
			})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a table serialized by MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var in tableJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("trace: decode table: %w", err)
	}
	if in.Processors < 0 {
		return fmt.Errorf("trace: decode table: negative processor count %d", in.Processors)
	}
	*t = *NewTable(in.Processors, false)
	for _, p := range in.Pairs {
		if p.Count <= 0 {
			return fmt.Errorf("trace: decode table: pair p%d->p%d has count %d", p.From, p.To, p.Count)
		}
		if err := t.MergeStats(p.From, p.To, DirStats{Count: p.Count, Min: p.Min, Max: p.Max}); err != nil {
			return err
		}
	}
	return nil
}
