package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tab := NewTable(3, false)
	samples := []Sample{
		{From: 0, To: 1, SendClock: 1, RecvClock: 1.5},
		{From: 0, To: 1, SendClock: 2, RecvClock: 2.2},
		{From: 1, To: 0, SendClock: 1, RecvClock: 3},
		{From: 2, To: 1, SendClock: 0, RecvClock: -4},
	}
	for _, s := range samples {
		if err := tab.Add(s); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.N() != 3 {
		t.Fatalf("N = %d, want 3", back.N())
	}
	for p := 0; p < 3; p++ {
		for q := 0; q < 3; q++ {
			if tab.stats[p][q] != back.stats[p][q] {
				t.Errorf("stats[%d][%d]: %v vs %v", p, q, tab.stats[p][q], back.stats[p][q])
			}
		}
	}
}

func TestTableJSONEmpty(t *testing.T) {
	tab := NewTable(2, false)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.N() != 2 || back.Active(0, 1) {
		t.Errorf("decoded empty table wrong: n=%d active=%v", back.N(), back.Active(0, 1))
	}
}

func TestTableJSONRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", "{nope"},
		{"negative processors", `{"processors": -1}`},
		{"self pair", `{"processors": 2, "pairs": [{"from":1,"to":1,"count":1,"min":0,"max":0}]}`},
		{"out of range", `{"processors": 2, "pairs": [{"from":0,"to":5,"count":1,"min":0,"max":0}]}`},
		{"zero count", `{"processors": 2, "pairs": [{"from":0,"to":1,"count":0,"min":0,"max":0}]}`},
		{"inverted stats", `{"processors": 2, "pairs": [{"from":0,"to":1,"count":2,"min":3,"max":1}]}`},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			var back Table
			if err := json.Unmarshal([]byte(tt.data), &back); err == nil {
				t.Error("bad input accepted")
			}
		})
	}
}

func TestTableJSONOmitsRaw(t *testing.T) {
	tab := NewTable(2, true)
	if err := tab.Add(Sample{From: 0, To: 1, SendClock: 0, RecvClock: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "raw") {
		t.Errorf("raw samples leaked into JSON: %s", data)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Raw(0, 1) != nil {
		t.Error("decoded table claims raw retention")
	}
}

func TestMergeStatsValidation(t *testing.T) {
	tab := NewTable(2, false)
	if err := tab.MergeStats(0, 0, DirStats{Count: 1, Min: 1, Max: 1}); err == nil {
		t.Error("self stats accepted")
	}
	if err := tab.MergeStats(0, 5, DirStats{Count: 1, Min: 1, Max: 1}); err == nil {
		t.Error("out-of-range stats accepted")
	}
	if err := tab.MergeStats(0, 1, DirStats{Count: 2, Min: 5, Max: 1}); err == nil {
		t.Error("inverted stats accepted")
	}
	if err := tab.MergeStats(0, 1, DirStats{Count: 2, Min: 1, Max: 5}); err != nil {
		t.Errorf("valid stats rejected: %v", err)
	}
	if got := tab.Stats(0, 1); got.Count != 2 || got.Min != 1 || got.Max != 5 {
		t.Errorf("merged stats = %v", got)
	}
	// Merging empty stats is a no-op.
	if err := tab.MergeStats(0, 1, NewDirStats()); err != nil {
		t.Errorf("empty merge rejected: %v", err)
	}
	if got := tab.Stats(0, 1); got.Count != 2 {
		t.Errorf("empty merge changed stats: %v", got)
	}
}
