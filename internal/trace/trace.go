// Package trace reduces the views of an execution to the per-directed-link
// statistics the delay models of Section 6 need: the count, minimum and
// maximum of the *estimated* delays d~(m) = recvClock - sendClock (Lemma
// 6.1 shows these are exactly what the views reveal).
//
// The same container is reused by the verifier with *actual* delays, since
// Lemmas 6.2 and 6.5 have identical shape for the estimated and actual
// quantities.
package trace

import (
	"fmt"
	"math"

	"clocksync/internal/model"
)

// Sample is one observed message: the sender's clock at transmission and
// the receiver's clock at receipt. The estimated delay is Recv - Send.
type Sample struct {
	From, To  model.ProcID
	SendClock float64
	RecvClock float64
}

// EstimatedDelay returns d~ for the sample.
func (s Sample) EstimatedDelay() float64 { return s.RecvClock - s.SendClock }

// DirStats summarizes the estimated delays observed on one directed link.
// The zero value describes a link with no traffic: Min = +Inf, Max = -Inf
// follow the paper's convention for d_min/d_max of empty links (Section
// 6.1) and fall out of Add naturally; use NewDirStats or check Count.
type DirStats struct {
	Count int
	Min   float64
	Max   float64
}

// NewDirStats returns empty statistics with the paper's conventions:
// Min = +Inf and Max = -Inf.
func NewDirStats() DirStats {
	return DirStats{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Add folds one estimated delay into the statistics.
func (d *DirStats) Add(est float64) {
	if d.Count == 0 {
		d.Min, d.Max = est, est
		d.Count = 1
		return
	}
	if est < d.Min {
		d.Min = est
	}
	if est > d.Max {
		d.Max = est
	}
	d.Count++
}

// Merge folds another statistics value into d.
func (d *DirStats) Merge(o DirStats) {
	if o.Count == 0 {
		return
	}
	if d.Count == 0 {
		*d = o
		return
	}
	if o.Min < d.Min {
		d.Min = o.Min
	}
	if o.Max > d.Max {
		d.Max = o.Max
	}
	d.Count += o.Count
}

// Empty reports whether no samples were observed.
func (d DirStats) Empty() bool { return d.Count == 0 }

// String renders the statistics compactly.
func (d DirStats) String() string {
	if d.Empty() {
		return "{}"
	}
	return fmt.Sprintf("{n=%d min=%g max=%g}", d.Count, d.Min, d.Max)
}

// Table holds DirStats for every ordered processor pair of an n-processor
// system, plus the raw per-pair delays when retention is enabled.
type Table struct {
	n      int
	stats  [][]DirStats // [from][to]
	keep   bool
	delays [][][]float64 // raw estimated delays, if keep
}

// NewTable returns an empty table for n processors. If keepRaw is set, raw
// estimated delays are retained per pair (needed by assumption
// admissibility checks and the verifier; costs memory proportional to the
// trace).
func NewTable(n int, keepRaw bool) *Table {
	t := &Table{n: n, keep: keepRaw}
	t.stats = make([][]DirStats, n)
	for i := range t.stats {
		t.stats[i] = make([]DirStats, n)
		for j := range t.stats[i] {
			t.stats[i][j] = NewDirStats()
		}
	}
	if keepRaw {
		t.delays = make([][][]float64, n)
		for i := range t.delays {
			t.delays[i] = make([][]float64, n)
		}
	}
	return t
}

// N returns the number of processors.
func (t *Table) N() int { return t.n }

// Add records one sample. Self-samples and out-of-range endpoints are
// rejected.
func (t *Table) Add(s Sample) error {
	from, to := int(s.From), int(s.To)
	if from < 0 || from >= t.n || to < 0 || to >= t.n {
		return fmt.Errorf("trace: sample endpoints p%d->p%d out of range [0,%d)", from, to, t.n)
	}
	if from == to {
		return fmt.Errorf("trace: self-sample at p%d", from)
	}
	est := s.EstimatedDelay()
	if math.IsNaN(est) || math.IsInf(est, 0) {
		return fmt.Errorf("trace: sample p%d->p%d has invalid estimated delay %v", from, to, est)
	}
	t.stats[from][to].Add(est)
	if t.keep {
		t.delays[from][to] = append(t.delays[from][to], est)
	}
	return nil
}

// Stats returns the statistics for the ordered pair (from, to).
func (t *Table) Stats(from, to model.ProcID) DirStats { return t.stats[from][to] }

// Raw returns the retained estimated delays for (from, to); nil when raw
// retention is off or the link is silent. The returned slice is owned by
// the table.
func (t *Table) Raw(from, to model.ProcID) []float64 {
	if !t.keep {
		return nil
	}
	return t.delays[from][to]
}

// Active reports whether any traffic was observed in either direction
// between p and q.
func (t *Table) Active(p, q model.ProcID) bool {
	return !t.stats[p][q].Empty() || !t.stats[q][p].Empty()
}

// Pairs calls fn for every ordered pair (p,q), p != q, with traffic in at
// least one direction between them.
func (t *Table) Pairs(fn func(p, q model.ProcID, pq, qp DirStats)) {
	for p := 0; p < t.n; p++ {
		for q := 0; q < t.n; q++ {
			if p == q {
				continue
			}
			if t.stats[p][q].Empty() && t.stats[q][p].Empty() {
				continue
			}
			fn(model.ProcID(p), model.ProcID(q), t.stats[p][q], t.stats[q][p])
		}
	}
}

// Collect reduces an execution's messages to a table of estimated-delay
// statistics; this is the "local computation on views" of Section 5.
func Collect(e *model.Execution, keepRaw bool) (*Table, error) {
	msgs, err := e.Messages()
	if err != nil {
		return nil, fmt.Errorf("trace: resolve messages: %w", err)
	}
	t := NewTable(e.N(), keepRaw)
	for _, m := range msgs {
		if err := t.Add(Sample{From: m.From, To: m.To, SendClock: m.SendClock, RecvClock: m.RecvClock}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// CollectActual builds a table of *actual* delay statistics from an
// execution. Only the verifier may use this: real delays are not observable
// by any correction function.
func CollectActual(e *model.Execution, keepRaw bool) (*Table, error) {
	msgs, err := e.Messages()
	if err != nil {
		return nil, fmt.Errorf("trace: resolve messages: %w", err)
	}
	t := NewTable(e.N(), keepRaw)
	for _, m := range msgs {
		d := m.Delay(e)
		// Encode the actual delay as a sample with SendClock 0 so that
		// EstimatedDelay() returns d.
		//clocklint:allow timedomain deliberate encoding: with SendClock 0, d~ degenerates to the actual delay d
		if err := t.Add(Sample{From: m.From, To: m.To, SendClock: 0, RecvClock: d}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MergeStats folds externally computed statistics for the ordered pair
// (from, to) into the table. It is the ingestion path for distributed
// protocols that ship reduced per-link statistics instead of raw samples;
// raw retention (if enabled) is unaffected, since no samples exist.
func (t *Table) MergeStats(from, to model.ProcID, s DirStats) error {
	f, o := int(from), int(to)
	if f < 0 || f >= t.n || o < 0 || o >= t.n {
		return fmt.Errorf("trace: stats endpoints p%d->p%d out of range [0,%d)", f, o, t.n)
	}
	if f == o {
		return fmt.Errorf("trace: self-stats at p%d", f)
	}
	if s.Count > 0 && (math.IsNaN(s.Min) || math.IsNaN(s.Max) || s.Max < s.Min) {
		return fmt.Errorf("trace: invalid stats %v for p%d->p%d", s, f, o)
	}
	t.stats[f][o].Merge(s)
	return nil
}
