package trace

import (
	"math"
	"testing"
	"testing/quick"

	"clocksync/internal/model"
)

func TestDirStatsBasics(t *testing.T) {
	d := NewDirStats()
	if !d.Empty() {
		t.Error("NewDirStats not empty")
	}
	if !math.IsInf(d.Min, 1) || !math.IsInf(d.Max, -1) {
		t.Errorf("empty stats = %v, want Min=+Inf Max=-Inf", d)
	}
	d.Add(3)
	d.Add(1)
	d.Add(2)
	if d.Count != 3 || d.Min != 1 || d.Max != 3 {
		t.Errorf("stats = %+v, want n=3 min=1 max=3", d)
	}
}

func TestDirStatsZeroValueAdd(t *testing.T) {
	var d DirStats // zero value: Count==0 makes Add initialize correctly
	d.Add(-2)
	if d.Count != 1 || d.Min != -2 || d.Max != -2 {
		t.Errorf("stats = %+v, want n=1 min=-2 max=-2", d)
	}
}

func TestDirStatsMerge(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
	}{
		{name: "both empty"},
		{name: "left empty", b: []float64{1, 2}},
		{name: "right empty", a: []float64{3}},
		{name: "overlap", a: []float64{1, 5}, b: []float64{0, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, b, both := NewDirStats(), NewDirStats(), NewDirStats()
			for _, x := range tt.a {
				a.Add(x)
				both.Add(x)
			}
			for _, x := range tt.b {
				b.Add(x)
				both.Add(x)
			}
			a.Merge(b)
			if a != both {
				t.Errorf("merged = %+v, want %+v", a, both)
			}
		})
	}
}

func TestDirStatsString(t *testing.T) {
	d := NewDirStats()
	if got := d.String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
	d.Add(1.5)
	if got := d.String(); got != "{n=1 min=1.5 max=1.5}" {
		t.Errorf("String() = %q", got)
	}
}

func TestTableAddValidation(t *testing.T) {
	tab := NewTable(2, false)
	tests := []struct {
		name    string
		s       Sample
		wantErr bool
	}{
		{name: "ok", s: Sample{From: 0, To: 1, SendClock: 1, RecvClock: 2}},
		{name: "self", s: Sample{From: 1, To: 1}, wantErr: true},
		{name: "from out of range", s: Sample{From: 5, To: 1}, wantErr: true},
		{name: "to out of range", s: Sample{From: 0, To: -1}, wantErr: true},
		{name: "nan", s: Sample{From: 0, To: 1, RecvClock: math.NaN()}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tab.Add(tt.s)
			if (err != nil) != tt.wantErr {
				t.Errorf("Add error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTableRawRetention(t *testing.T) {
	tab := NewTable(2, true)
	for _, d := range []float64{0.5, 0.3, 0.9} {
		if err := tab.Add(Sample{From: 0, To: 1, SendClock: 0, RecvClock: d}); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	raw := tab.Raw(0, 1)
	if len(raw) != 3 {
		t.Fatalf("len(Raw) = %d, want 3", len(raw))
	}
	if tab.Raw(1, 0) != nil {
		t.Error("Raw(silent link) != nil")
	}
	noRaw := NewTable(2, false)
	_ = noRaw.Add(Sample{From: 0, To: 1, RecvClock: 1})
	if noRaw.Raw(0, 1) != nil {
		t.Error("Raw != nil with retention off")
	}
}

func TestTablePairsAndActive(t *testing.T) {
	tab := NewTable(3, false)
	_ = tab.Add(Sample{From: 0, To: 1, RecvClock: 1})
	if !tab.Active(0, 1) || !tab.Active(1, 0) {
		t.Error("Active(0,1)/(1,0) = false, want true")
	}
	if tab.Active(1, 2) {
		t.Error("Active(1,2) = true, want false")
	}
	var visited [][2]model.ProcID
	tab.Pairs(func(p, q model.ProcID, pq, qp DirStats) {
		visited = append(visited, [2]model.ProcID{p, q})
	})
	// Both orientations of the active pair are visited (and nothing else).
	if len(visited) != 2 {
		t.Fatalf("Pairs visited %v, want both orientations of (0,1)", visited)
	}
}

// buildExec creates an execution with one message in each direction between
// adjacent processors of a 3-line, with known delays.
func buildExec(t *testing.T) *model.Execution {
	t.Helper()
	starts := []float64{0, 10, -5}
	b := model.NewBuilder(starts)
	sendAt := 20.0
	add := func(from, to model.ProcID, d float64) {
		t.Helper()
		if _, err := b.AddMessageDelay(from, to, sendAt, d); err != nil {
			t.Fatalf("AddMessageDelay: %v", err)
		}
	}
	add(0, 1, 1.0)
	add(1, 0, 2.0)
	add(1, 2, 0.5)
	add(2, 1, 0.25)
	e, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return e
}

func TestCollectEstimated(t *testing.T) {
	e := buildExec(t)
	tab, err := Collect(e, true)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	// d~(0->1) = d + S0 - S1 = 1 + 0 - 10 = -9.
	if got := tab.Stats(0, 1).Min; got != -9 {
		t.Errorf("d~min(0,1) = %v, want -9", got)
	}
	// d~(1->0) = 2 + 10 - 0 = 12.
	if got := tab.Stats(1, 0).Min; got != 12 {
		t.Errorf("d~min(1,0) = %v, want 12", got)
	}
	// d~(2->1) = 0.25 - 5 - 10 = -14.75.
	if got := tab.Stats(2, 1).Max; got != -14.75 {
		t.Errorf("d~max(2,1) = %v, want -14.75", got)
	}
}

func TestCollectActualSeesTrueDelays(t *testing.T) {
	e := buildExec(t)
	tab, err := CollectActual(e, false)
	if err != nil {
		t.Fatalf("CollectActual: %v", err)
	}
	if got := tab.Stats(0, 1).Min; got != 1.0 {
		t.Errorf("dmin(0,1) = %v, want 1", got)
	}
	if got := tab.Stats(2, 1).Max; got != 0.25 {
		t.Errorf("dmax(2,1) = %v, want 0.25", got)
	}
}

// TestEstimatedEqualsActualPlusSkew ties Collect and CollectActual together:
// d~ = d + S_from - S_to for every directed pair (Lemma 6.1).
func TestEstimatedEqualsActualPlusSkew(t *testing.T) {
	e := buildExec(t)
	est, err := Collect(e, false)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	act, err := CollectActual(e, false)
	if err != nil {
		t.Fatalf("CollectActual: %v", err)
	}
	starts := e.Starts()
	act.Pairs(func(p, q model.ProcID, pq, qp DirStats) {
		if pq.Empty() {
			return
		}
		skew := starts[p] - starts[q]
		got := est.Stats(p, q)
		if math.Abs(got.Min-(pq.Min+skew)) > 1e-12 || math.Abs(got.Max-(pq.Max+skew)) > 1e-12 {
			t.Errorf("pair (%d,%d): est=%v act=%v skew=%v", p, q, got, pq, skew)
		}
	})
}

// Property: for any sample, EstimatedDelay is RecvClock - SendClock.
func TestSampleEstimatedDelayQuick(t *testing.T) {
	f := func(send, recv float64) bool {
		s := Sample{From: 0, To: 1, SendClock: send, RecvClock: recv}
		got := s.EstimatedDelay()
		want := recv - send
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
