package trace

import (
	"math"
	"testing"

	"clocksync/internal/model"
)

func TestCanon(t *testing.T) {
	if Canon(3, 1) != (LinkKey{P: 1, Q: 3}) {
		t.Errorf("Canon(3,1) = %v", Canon(3, 1))
	}
	if Canon(1, 3) != (LinkKey{P: 1, Q: 3}) {
		t.Errorf("Canon(1,3) = %v", Canon(1, 3))
	}
}

func buildPairExec(t *testing.T) *model.Execution {
	t.Helper()
	b := model.NewBuilder([]float64{0, 2})
	// Exchange 1: p0 sends at real 5 (delay 0.1), p1 answers at real 5.2
	// (delay 0.2). Exchange 2 at real 7 with delays 0.3/0.4. Insert the
	// responses out of order to exercise the sorting.
	add := func(from, to model.ProcID, sendReal, d float64) {
		t.Helper()
		if _, err := b.AddMessageDelay(from, to, sendReal, d); err != nil {
			t.Fatal(err)
		}
	}
	add(1, 0, 7.5, 0.4) // response 2 (recorded first)
	add(0, 1, 5, 0.1)   // request 1
	add(1, 0, 5.2, 0.2) // response 1
	add(0, 1, 7, 0.3)   // request 2
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCollectPairsOrdersBySendClock(t *testing.T) {
	e := buildPairExec(t)
	pairs, err := CollectPairs(e)
	if err != nil {
		t.Fatalf("CollectPairs: %v", err)
	}
	got := pairs[Canon(0, 1)]
	if len(got) != 2 {
		t.Fatalf("pairs = %d, want 2", len(got))
	}
	// Estimated delays fold the skew S0-S1 = -2 for p0->p1 and +2 back.
	want := []EstPair{
		{PQ: 0.1 - 2, QP: 0.2 + 2},
		{PQ: 0.3 - 2, QP: 0.4 + 2},
	}
	for i := range want {
		if math.Abs(got[i].PQ-want[i].PQ) > 1e-12 || math.Abs(got[i].QP-want[i].QP) > 1e-12 {
			t.Errorf("pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCollectActualPairs(t *testing.T) {
	e := buildPairExec(t)
	pairs, err := CollectActualPairs(e)
	if err != nil {
		t.Fatalf("CollectActualPairs: %v", err)
	}
	got := pairs[Canon(0, 1)]
	want := []EstPair{{PQ: 0.1, QP: 0.2}, {PQ: 0.3, QP: 0.4}}
	for i := range want {
		if math.Abs(got[i].PQ-want[i].PQ) > 1e-12 || math.Abs(got[i].QP-want[i].QP) > 1e-12 {
			t.Errorf("pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCollectPairsUnmatchedDropped(t *testing.T) {
	b := model.NewBuilder([]float64{0, 0})
	if _, err := b.AddMessageDelay(0, 1, 1, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddMessageDelay(0, 1, 2, 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddMessageDelay(1, 0, 1.5, 0.2); err != nil {
		t.Fatal(err)
	}
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := CollectPairs(e)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pairs[Canon(0, 1)]); got != 1 {
		t.Errorf("pairs = %d, want 1 (extra request dropped)", got)
	}
}
