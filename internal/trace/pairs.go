package trace

import (
	"fmt"
	"sort"

	"clocksync/internal/model"
)

// LinkKey identifies an unordered link in canonical orientation P < Q.
type LinkKey struct {
	P, Q model.ProcID
}

// Canon returns the canonical key for an unordered pair.
func Canon(p, q model.ProcID) LinkKey {
	if p > q {
		p, q = q, p
	}
	return LinkKey{P: p, Q: q}
}

// EstPair is one matched request/response exchange: the estimated delay
// of the i-th P->Q message and of the i-th Q->P message, in send-clock
// order. (The canonical orientation's P side is the "request" direction.)
type EstPair struct {
	PQ, QP float64
}

// CollectPairs matches the messages of each link by rank in send-clock
// order: the i-th P->Q message pairs with the i-th Q->P message. For
// exchange protocols that alternate request/response per link (ping-pong,
// symmetric bursts) this recovers exactly the same-time pairs the
// paired-bias model constrains. Unmatched trailing messages are dropped.
func CollectPairs(e *model.Execution) (map[LinkKey][]EstPair, error) {
	msgs, err := e.Messages()
	if err != nil {
		return nil, fmt.Errorf("trace: resolve messages: %w", err)
	}
	type dirMsgs struct {
		pq, qp []model.Message
	}
	byLink := make(map[LinkKey]*dirMsgs)
	for _, m := range msgs {
		key := Canon(m.From, m.To)
		dm := byLink[key]
		if dm == nil {
			dm = &dirMsgs{}
			byLink[key] = dm
		}
		if m.From == key.P {
			dm.pq = append(dm.pq, m)
		} else {
			dm.qp = append(dm.qp, m)
		}
	}
	out := make(map[LinkKey][]EstPair, len(byLink))
	for key, dm := range byLink {
		sort.Slice(dm.pq, func(i, j int) bool { return dm.pq[i].SendClock < dm.pq[j].SendClock })
		sort.Slice(dm.qp, func(i, j int) bool { return dm.qp[i].SendClock < dm.qp[j].SendClock })
		n := len(dm.pq)
		if len(dm.qp) < n {
			n = len(dm.qp)
		}
		pairs := make([]EstPair, n)
		for i := 0; i < n; i++ {
			pairs[i] = EstPair{
				PQ: dm.pq[i].EstimatedDelay(),
				QP: dm.qp[i].EstimatedDelay(),
			}
		}
		out[key] = pairs
	}
	return out, nil
}

// CollectActualPairs is CollectPairs with actual (real-time) delays; for
// the verifier only.
func CollectActualPairs(e *model.Execution) (map[LinkKey][]EstPair, error) {
	msgs, err := e.Messages()
	if err != nil {
		return nil, fmt.Errorf("trace: resolve messages: %w", err)
	}
	type dirMsgs struct {
		pq, qp []model.Message
	}
	byLink := make(map[LinkKey]*dirMsgs)
	for _, m := range msgs {
		key := Canon(m.From, m.To)
		dm := byLink[key]
		if dm == nil {
			dm = &dirMsgs{}
			byLink[key] = dm
		}
		if m.From == key.P {
			dm.pq = append(dm.pq, m)
		} else {
			dm.qp = append(dm.qp, m)
		}
	}
	out := make(map[LinkKey][]EstPair, len(byLink))
	for key, dm := range byLink {
		sort.Slice(dm.pq, func(i, j int) bool { return dm.pq[i].SendClock < dm.pq[j].SendClock })
		sort.Slice(dm.qp, func(i, j int) bool { return dm.qp[i].SendClock < dm.qp[j].SendClock })
		n := len(dm.pq)
		if len(dm.qp) < n {
			n = len(dm.qp)
		}
		pairs := make([]EstPair, n)
		for i := 0; i < n; i++ {
			pairs[i] = EstPair{PQ: dm.pq[i].Delay(e), QP: dm.qp[i].Delay(e)}
		}
		out[key] = pairs
	}
	return out, nil
}
