package drift

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/sim"
)

func TestRatesValidate(t *testing.T) {
	tests := []struct {
		name    string
		rates   Rates
		n       int
		rho     float64
		wantErr bool
	}{
		{name: "ok", rates: Rates{1, 1.001, 0.999}, n: 3, rho: 0.002},
		{name: "wrong length", rates: Rates{1}, n: 3, rho: 0.01, wantErr: true},
		{name: "out of band", rates: Rates{1, 1.5, 1}, n: 3, rho: 0.01, wantErr: true},
		{name: "bad rho", rates: Rates{1, 1, 1}, n: 3, rho: -1, wantErr: true},
		{name: "rho one", rates: Rates{1, 1, 1}, n: 3, rho: 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.rates.Validate(tt.n, tt.rho)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCollectDriftedHandCase(t *testing.T) {
	// One message p0 -> p1: real delay 1, S = {0, 0}, sent at real 10.
	b := model.NewBuilder([]float64{0, 0})
	if _, err := b.AddMessageDelay(0, 1, 10, 1); err != nil {
		t.Fatal(err)
	}
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// rate0 = 1.01 (fast sender), rate1 = 0.99 (slow receiver).
	tab, err := CollectDrifted(e, Rates{1.01, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// Ideal clocks: send 10, recv 11. Drifted: send 10.1, recv 10.89.
	// Estimated delay = 10.89 - 10.1 = 0.79.
	if got := tab.Stats(0, 1).Min; math.Abs(got-0.79) > 1e-12 {
		t.Errorf("drifted d~ = %v, want 0.79", got)
	}
	if _, err := CollectDrifted(e, Rates{1}); err == nil {
		t.Error("wrong-length rates accepted")
	}
}

func TestMaxClock(t *testing.T) {
	b := model.NewBuilder([]float64{0, 3})
	if _, err := b.AddMessageDelay(0, 1, 10, 1); err != nil {
		t.Fatal(err)
	}
	e, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	h, err := MaxClock(e)
	if err != nil {
		t.Fatal(err)
	}
	// Send clock 10 (p0), recv clock 8 (p1, started at 3): horizon 10.
	if h != 10 {
		t.Errorf("MaxClock = %v, want 10", h)
	}
}

func TestInflate(t *testing.T) {
	bounds, err := delay.SymmetricBounds(0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	bias, err := delay.NewRTTBias(0.05)
	if err != nil {
		t.Fatal(err)
	}
	both, err := delay.NewIntersect(bounds, bias)
	if err != nil {
		t.Fatal(err)
	}
	const (
		rho     = 0.001
		horizon = 10.0
		slack   = 2 * rho * horizon // 0.02
	)
	ib, err := Inflate(bounds, rho, horizon)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ib.(delay.Bounds)
	if !ok {
		t.Fatalf("Inflate(Bounds) returned %T", ib)
	}
	if math.Abs(got.PQ.LB-0.08) > 1e-12 || math.Abs(got.PQ.UB-0.32) > 1e-12 {
		t.Errorf("inflated bounds = %v", got.PQ)
	}

	ibias, err := Inflate(bias, rho, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := ibias.(delay.RTTBias); !ok || math.Abs(b.B-(0.05+2*slack)) > 1e-12 {
		t.Errorf("inflated bias = %v", ibias)
	}

	iboth, err := Inflate(both, rho, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := iboth.(delay.Intersect); !ok {
		t.Errorf("inflated intersect = %T", iboth)
	}

	// Lower bound clamps at zero.
	tight, err := delay.SymmetricBounds(0.001, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	it, err := Inflate(tight, rho, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if it.(delay.Bounds).PQ.LB != 0 {
		t.Errorf("inflated LB = %v, want clamp to 0", it.(delay.Bounds).PQ.LB)
	}

	if _, err := Inflate(bounds, -0.1, horizon); err == nil {
		t.Error("negative rho accepted")
	}
	if _, err := Inflate(bounds, rho, math.Inf(1)); err == nil {
		t.Error("infinite horizon accepted")
	}
}

// driftScenario simulates a ring with drifting clocks and synchronizes
// using inflated assumptions; returns everything needed for the soundness
// check.
func driftScenario(t *testing.T, rng *rand.Rand, n int, rho float64) (starts []float64, rates Rates, res *core.Result, horizon float64, links []core.Link) {
	t.Helper()
	starts = sim.UniformStarts(rng, n, 1)
	rates = make(Rates, n)
	for p := range rates {
		rates[p] = 1 - rho + 2*rho*rng.Float64()
	}
	const lb, ub = 0.05, 0.2
	net, err := sim.NewNetwork(starts, sim.Ring(n), func(sim.Pair) sim.LinkDelays {
		return sim.Symmetric(sim.Uniform{Lo: lb, Hi: ub})
	})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := sim.Run(net, sim.NewBurstFactory(3, 0.05, sim.SafeWarmup(starts)+0.5), sim.RunConfig{Seed: rng.Int63()})
	if err != nil {
		t.Fatal(err)
	}
	horizon, err = MaxClock(exec)
	if err != nil {
		t.Fatal(err)
	}
	base, err := delay.SymmetricBounds(lb, ub)
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := Inflate(base, rho, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sim.Ring(n) {
		links = append(links, core.Link{P: model.ProcID(e.P), Q: model.ProcID(e.Q), A: inflated})
	}
	tab, err := CollectDrifted(exec, rates)
	if err != nil {
		t.Fatal(err)
	}
	res, err = core.SynchronizeSystem(n, links, tab, core.MLSOptions{}, core.Options{Centered: true})
	if err != nil {
		t.Fatal(err)
	}
	return starts, rates, res, horizon, links
}

// TestDriftedSyncSoundness: with inflated assumptions, the corrected
// drifted clocks stay within the Bound() envelope at and after the
// measurement horizon, across random drifts.
func TestDriftedSyncSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, rho := range []float64{0, 1e-4, 1e-3, 5e-3} {
		for trial := 0; trial < 5; trial++ {
			starts, rates, res, horizon, _ := driftScenario(t, rng, 6, rho)
			if math.IsInf(res.Precision, 1) {
				t.Fatalf("rho=%v: infinite precision on connected ring", rho)
			}
			for _, dt := range []float64{0, 10, 100} {
				tEval := maxFloat(starts) + horizon + dt
				disc, err := Discrepancy(starts, rates, res.Corrections, tEval)
				if err != nil {
					t.Fatal(err)
				}
				bound := Bound(res.Precision, rho, horizon, tEval)
				if disc > bound+1e-9 {
					t.Errorf("rho=%v dt=%v: discrepancy %v exceeds bound %v", rho, dt, disc, bound)
				}
			}
		}
	}
}

// TestDriftZeroMatchesDriftFree: with rho = 0 and unit rates, the drifted
// pipeline is exactly the drift-free one.
func TestDriftZeroMatchesDriftFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	starts, rates, res, _, links := driftScenario(t, rng, 4, 0)
	for _, r := range rates {
		if r != 1 {
			t.Fatalf("rate = %v, want 1", r)
		}
	}
	rho, err := core.Rho(starts, res.Corrections)
	if err != nil {
		t.Fatal(err)
	}
	if rho > res.Precision+1e-9 {
		t.Errorf("rho %v exceeds precision %v", rho, res.Precision)
	}
	_ = links // the full optimality certificates live in internal/verify
}

func TestDiscrepancyValidation(t *testing.T) {
	if _, err := Discrepancy([]float64{0, 1}, Rates{1}, []float64{0, 0}, 5); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestBoundAndResyncPeriod(t *testing.T) {
	if got := Bound(0.1, 0.001, 10, 100); math.Abs(got-(0.1+0.02+0.2)) > 1e-12 {
		t.Errorf("Bound = %v", got)
	}
	if got := ResyncPeriod(0.5, 0.1, 0.001); math.Abs(got-200) > 1e-9 {
		t.Errorf("ResyncPeriod = %v, want 200", got)
	}
	if got := ResyncPeriod(0.05, 0.1, 0.001); got != 0 {
		t.Errorf("unreachable target period = %v, want 0", got)
	}
	if got := ResyncPeriod(0.2, 0.1, 0); !math.IsInf(got, 1) {
		t.Errorf("zero drift period = %v, want +Inf", got)
	}
	if got := ResyncPeriod(0.05, 0.1, 0); got != 0 {
		t.Errorf("zero drift unreachable = %v, want 0", got)
	}
}

func maxFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
