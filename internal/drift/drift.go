// Package drift extends the framework to clocks with bounded drift. The
// paper assumes drift-free clocks and argues (footnote 1, after
// Kopetz-Ochsenreiter) that periodic resynchronization makes this
// reasonable; this package supplies the machinery that argument needs:
//
//   - CollectDrifted converts a simulated execution into the trace a
//     system with drifting hardware clocks would actually record
//     (clock_p(t) = rate_p * (t - S_p), rate_p in [1-rho, 1+rho]);
//   - Inflate soundly widens any delay assumption to absorb the timestamp
//     error drift introduces within a measurement horizon, so the
//     drift-free optimal algorithm applies unchanged;
//   - Discrepancy and ResyncPeriod quantify how the corrected clocks
//     diverge after synchronization and how often to resynchronize for a
//     target precision.
//
// With horizon H (the largest clock value appearing in any timestamp) and
// drift bound rho, every estimated delay carries at most 2*rho*H of
// timestamp error, so bounds widen by that amount per side and bias
// bounds by twice it. The resulting guarantee degrades gracefully: at
// real time dt after the measurement, corrected clocks agree to within
// precision + 2*rho*(H + dt).
package drift

import (
	"fmt"
	"math"

	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/trace"
)

// Rates is the per-processor clock rate vector; entry p multiplies real
// time elapsed since p's start.
type Rates []float64

// Validate checks the rates against a drift bound rho.
func (r Rates) Validate(n int, rho float64) error {
	if len(r) != n {
		return fmt.Errorf("drift: %d rates for %d processors", len(r), n)
	}
	if rho < 0 || rho >= 1 {
		return fmt.Errorf("drift: rho = %v, want [0,1)", rho)
	}
	for p, v := range r {
		if math.IsNaN(v) || v < 1-rho || v > 1+rho {
			return fmt.Errorf("drift: rate[%d] = %v outside [%v,%v]", p, v, 1-rho, 1+rho)
		}
	}
	return nil
}

// CollectDrifted reduces an execution to the estimated-delay statistics a
// system with the given clock rates would record: every timestamp is
// re-expressed through the drifted clock before the Lemma 6.1 reduction.
func CollectDrifted(e *model.Execution, rates Rates) (*trace.Table, error) {
	if len(rates) != e.N() {
		return nil, fmt.Errorf("drift: %d rates for %d processors", len(rates), e.N())
	}
	msgs, err := e.Messages()
	if err != nil {
		return nil, fmt.Errorf("drift: %w", err)
	}
	tab := trace.NewTable(e.N(), false)
	for _, m := range msgs {
		// The ideal clock value IS t - S, so the drifted reading is just
		// the rate times the ideal reading.
		send := rates[m.From] * m.SendClock
		recv := rates[m.To] * m.RecvClock
		if err := tab.Add(trace.Sample{From: m.From, To: m.To, SendClock: send, RecvClock: recv}); err != nil {
			return nil, err
		}
	}
	return tab, nil
}

// MaxClock returns the largest absolute ideal clock value appearing in
// any message timestamp of the execution: the measurement horizon H used
// by Inflate.
func MaxClock(e *model.Execution) (float64, error) {
	msgs, err := e.Messages()
	if err != nil {
		return 0, fmt.Errorf("drift: %w", err)
	}
	h := 0.0
	for _, m := range msgs {
		h = math.Max(h, math.Abs(m.SendClock))
		h = math.Max(h, math.Abs(m.RecvClock))
	}
	return h, nil
}

// Inflate widens a delay assumption so it remains sound for timestamps
// carrying up to rho*horizon of drift error each: estimated delays move
// by at most slack = 2*rho*horizon, so bounds relax by slack per side and
// bias bounds by 2*slack.
//
// Under drift, synchronize with MLSOptions.AssumeNonnegative disabled:
// the implicit "delays >= 0" constraint is about true delays, but drifted
// estimates can sit up to slack below them, so applying it to drifted
// data would overstate the guarantee. Inflate cannot fix this for you —
// lower bounds clamp at zero by physics — hence the option must be off.
func Inflate(a delay.Assumption, rho, horizon float64) (delay.Assumption, error) {
	if rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("drift: rho = %v, want [0,1)", rho)
	}
	if horizon < 0 || math.IsInf(horizon, 0) || math.IsNaN(horizon) {
		return nil, fmt.Errorf("drift: horizon = %v, want finite >= 0", horizon)
	}
	slack := 2 * rho * horizon
	return inflate(a, slack)
}

func inflate(a delay.Assumption, slack float64) (delay.Assumption, error) {
	switch v := a.(type) {
	case delay.Bounds:
		return delay.NewBounds(widen(v.PQ, slack), widen(v.QP, slack))
	case delay.RTTBias:
		return delay.NewRTTBias(v.B + 2*slack)
	case delay.Intersect:
		parts := make([]delay.Assumption, 0, len(v.Parts))
		for _, p := range v.Parts {
			ip, err := inflate(p, slack)
			if err != nil {
				return nil, err
			}
			parts = append(parts, ip)
		}
		return delay.NewIntersect(parts...)
	default:
		return nil, fmt.Errorf("drift: cannot inflate assumption %v (unknown type %T)", a, a)
	}
}

func widen(r delay.Range, slack float64) delay.Range {
	lb := r.LB - slack
	if lb < 0 {
		lb = 0
	}
	ub := r.UB
	if !math.IsInf(ub, 1) {
		ub += slack
	}
	return delay.Range{LB: lb, UB: ub}
}

// Discrepancy evaluates the realized corrected-clock disagreement of a
// drifted system at real time t:
//
//	max over pairs | rate_p*(t-S_p) + x_p - rate_q*(t-S_q) - x_q |.
func Discrepancy(starts []float64, rates Rates, corrections []float64, t float64) (float64, error) {
	n := len(starts)
	if len(rates) != n || len(corrections) != n {
		return 0, fmt.Errorf("drift: dimension mismatch (%d starts, %d rates, %d corrections)", n, len(rates), len(corrections))
	}
	worst := 0.0
	for p := 0; p < n; p++ {
		cp := rates[p]*(t-starts[p]) + corrections[p]
		for q := p + 1; q < n; q++ {
			cq := rates[q]*(t-starts[q]) + corrections[q]
			if d := math.Abs(cp - cq); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// Bound returns the sound discrepancy bound at dt real seconds after the
// measurement horizon: the inflated-assumption precision plus the
// timestamp slack at the horizon plus the post-sync divergence.
func Bound(precision, rho, horizon, dt float64) float64 {
	return precision + 2*rho*horizon + 2*rho*dt
}

// ResyncPeriod returns the longest interval between synchronizations that
// keeps the corrected clocks within target, given the achieved precision
// at sync time and the drift bound. It returns 0 when even immediate
// resynchronization cannot meet the target.
func ResyncPeriod(target, precisionAtSync, rho float64) float64 {
	if rho <= 0 {
		if precisionAtSync <= target {
			return math.Inf(1)
		}
		return 0
	}
	headroom := target - precisionAtSync
	if headroom <= 0 {
		return 0
	}
	return headroom / (2 * rho)
}
