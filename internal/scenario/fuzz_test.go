package scenario

import (
	"testing"
)

// FuzzParseAndBuild checks that arbitrary scenario JSON never panics the
// parser/builder: every input either builds or fails with an error.
func FuzzParseAndBuild(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"processors": 2, "topology": {"kind": "ring"}, "protocol": {"kind": "burst", "warmup": -1}}`,
		`{"processors": 4, "seed": 7, "topology": {"kind": "grid", "w": 2, "h": 2},
		  "defaultLink": {"assumption": {"kind": "noBounds"},
		                  "delays": {"kind": "symmetric", "sampler": {"kind": "constant", "d": 0.1}}},
		  "protocol": {"kind": "pingpong", "rounds": 1, "warmup": -1}}`,
		`{"processors": 3, "topology": {"kind": "custom", "pairs": [[0,1],[1,2]]},
		  "defaultLink": {"assumption": {"kind": "and", "parts": [{"kind":"bias","b":0.1},{"kind":"noBounds"}]},
		                  "delays": {"kind": "congestion", "period": 1, "duty": 0.5, "surge": 0.2,
		                             "inner": {"kind": "biasWindow", "base": 0.1, "width": 0.05}}},
		  "protocol": {"kind": "periodic", "period": 0.5, "count": 2, "warmup": -1}}`,
		`{"processors": -1}`,
		`{"processors": 2, "starts": [0], "topology": {"kind": "line"}, "protocol": {"kind": "burst", "warmup": -1}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return // malformed JSON: fine
		}
		// Cap sizes so the fuzzer cannot allocate absurd networks.
		if sc.Processors > 64 || len(sc.Links) > 256 || len(sc.Topology.Pairs) > 256 {
			return
		}
		built, err := sc.Build()
		if err != nil {
			return // invalid scenario: fine
		}
		if built.Net.N() != sc.Processors {
			t.Fatalf("built network has %d processors, scenario says %d", built.Net.N(), sc.Processors)
		}
	})
}

func TestCongestionDelaySpec(t *testing.T) {
	s := validScenario()
	s.DefaultLink.Delays = DelaySpec{
		Kind:   "congestion",
		Inner:  &DelaySpec{Kind: "symmetric", Sampler: &SamplerSpec{Kind: "uniform", Lo: 0.05, Hi: 0.1}},
		Period: 1, Duty: 0.4, Surge: 0.3,
	}
	// Keep the declared assumption sound for the surged delays.
	s.DefaultLink.Assumption = AssumptionSpec{Kind: "symmetricBounds", LB: 0.05, UB: 0.45}
	if _, err := s.Build(); err != nil {
		t.Fatalf("Build(congestion): %v", err)
	}

	bad := DelaySpec{Kind: "congestion", Period: 1}
	if _, err := bad.Build(); err == nil {
		t.Error("congestion without inner accepted")
	}
	bad2 := DelaySpec{Kind: "congestion", Inner: &DelaySpec{Kind: "biasWindow", Base: 0.1, Width: 0.01}, Period: -1}
	if _, err := bad2.Build(); err == nil {
		t.Error("negative period accepted")
	}
}
