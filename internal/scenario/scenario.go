// Package scenario binds a simulated system description — topology, start
// times, per-link delay samplers and delay assumptions, measurement
// protocol — into one JSON-serializable value, so the CLI, the examples
// and the experiment harness share a single configuration language.
package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/sim"
)

// Scenario is a complete run description.
type Scenario struct {
	// Processors is the system size n.
	Processors int `json:"processors"`
	// Seed drives all randomness (start times, delays).
	Seed int64 `json:"seed"`
	// StartSpread draws start times uniformly from [0, StartSpread) when
	// Starts is empty.
	StartSpread float64 `json:"startSpread,omitempty"`
	// Starts optionally pins the start times (length must equal
	// Processors).
	Starts []float64 `json:"starts,omitempty"`
	// Topology selects the link structure.
	Topology Topology `json:"topology"`
	// DefaultLink applies to links not listed in Links.
	DefaultLink *LinkSpec `json:"defaultLink,omitempty"`
	// Links overrides assumption/delays for specific links.
	Links []LinkOverride `json:"links,omitempty"`
	// Protocol selects the measurement traffic.
	Protocol ProtocolSpec `json:"protocol"`
	// Faults optionally injects crashes, partitions and message loss.
	Faults *FaultsSpec `json:"faults,omitempty"`
	// Comment is free-form provenance — e.g. which genfuzz seed produced
	// a promoted golden and how to regenerate it. Build ignores it.
	Comment string `json:"comment,omitempty"`
}

// FaultsSpec is the JSON form of a fault schedule.
type FaultsSpec struct {
	// Crashes stops processors at real times (crash-stop: no further
	// sends, receives or timers).
	Crashes []CrashSpec `json:"crashes,omitempty"`
	// Partitions drop every message crossing a link during a window.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
	// Loss drops each message independently with this probability, on top
	// of any per-link loss models. Must be in [0, 1).
	Loss float64 `json:"loss,omitempty"`
	// Byzantine marks adversarial reporters. Entries take effect in
	// protocols that install a payload mutator (the distributed runners
	// do); the plain measurement protocols ignore them.
	Byzantine []ByzantineSpec `json:"byzantine,omitempty"`
}

// ByzantineSpec marks one adversarial reporter — or, via fraction, the
// ⌊fraction·n⌋ highest-numbered processors — with a lying strategy.
type ByzantineSpec struct {
	// Proc is the lying processor. Exactly one of Proc and Fraction must
	// be set (Proc is a pointer so processor 0 is expressible).
	Proc *int `json:"proc,omitempty"`
	// Fraction in (0, 1] expands to the ⌊fraction·n⌋ highest-numbered
	// processors, a convenient sweep axis for resilience experiments.
	Fraction float64 `json:"fraction,omitempty"`
	// Strategy is one of inflate|deflate|skew|equivocate|forge.
	Strategy string `json:"strategy"`
	// Magnitude scales the lie, in clock-time units.
	Magnitude float64 `json:"magnitude,omitempty"`
	// Seed drives per-destination perturbations (equivocation).
	Seed int64 `json:"seed,omitempty"`
}

// CrashSpec crash-stops one processor.
type CrashSpec struct {
	Proc int     `json:"proc"`
	At   float64 `json:"at"`
}

// PartitionSpec cuts one link during [from, until). An until of 0 (or
// negative) means forever, mirroring the upper-bound sentinel convention.
type PartitionSpec struct {
	P     int     `json:"p"`
	Q     int     `json:"q"`
	From  float64 `json:"from"`
	Until float64 `json:"until,omitempty"`
}

// Build converts the spec into a simulator fault schedule for a system
// of n processors (n resolves fraction-form byzantine entries).
func (f *FaultsSpec) Build(n int) (*sim.Faults, error) {
	if f == nil {
		return nil, nil
	}
	if math.IsNaN(f.Loss) || f.Loss < 0 || f.Loss >= 1 {
		return nil, fmt.Errorf("scenario: faults.loss = %v, want [0, 1)", f.Loss)
	}
	faults := &sim.Faults{Loss: f.Loss}
	for i, c := range f.Crashes {
		if c.Proc < 0 || c.Proc >= n {
			return nil, fmt.Errorf("scenario: faults.crashes[%d].proc = %d, want [0, %d)", i, c.Proc, n)
		}
		if math.IsNaN(c.At) {
			return nil, fmt.Errorf("scenario: faults.crashes[%d].at = NaN", i)
		}
		faults.Crashes = append(faults.Crashes, sim.Crash{Proc: c.Proc, At: c.At})
	}
	for i, p := range f.Partitions {
		if p.P < 0 || p.P >= n || p.Q < 0 || p.Q >= n {
			return nil, fmt.Errorf("scenario: faults.partitions[%d] = (%d, %d), want endpoints in [0, %d)", i, p.P, p.Q, n)
		}
		if p.P == p.Q {
			return nil, fmt.Errorf("scenario: faults.partitions[%d] = (%d, %d): a processor cannot be partitioned from itself", i, p.P, p.Q)
		}
		if math.IsNaN(p.From) || math.IsNaN(p.Until) {
			return nil, fmt.Errorf("scenario: faults.partitions[%d]: from = %v, until = %v, want non-NaN", i, p.From, p.Until)
		}
		until := p.Until
		if until <= 0 {
			until = math.Inf(1)
		}
		faults.Partitions = append(faults.Partitions, sim.Partition{P: p.P, Q: p.Q, From: p.From, Until: until})
	}
	for i, b := range f.Byzantine {
		procs, err := b.procs(n)
		if err != nil {
			return nil, fmt.Errorf("scenario: faults.byzantine[%d]: %w", i, err)
		}
		if !sim.KnownByzantineStrategy(sim.ByzantineStrategy(b.Strategy)) {
			return nil, fmt.Errorf("scenario: faults.byzantine[%d].strategy = %q, want inflate|deflate|skew|equivocate|forge", i, b.Strategy)
		}
		if math.IsNaN(b.Magnitude) || math.IsInf(b.Magnitude, 0) || b.Magnitude < 0 {
			return nil, fmt.Errorf("scenario: faults.byzantine[%d].magnitude = %v, want finite >= 0", i, b.Magnitude)
		}
		for _, p := range procs {
			faults.Byzantine = append(faults.Byzantine, sim.Byzantine{
				Proc: p, Strategy: sim.ByzantineStrategy(b.Strategy), Magnitude: b.Magnitude, Seed: b.Seed,
			})
		}
	}
	return faults, nil
}

// procs resolves a byzantine entry to concrete processor ids.
func (b ByzantineSpec) procs(n int) ([]int, error) {
	switch {
	case b.Proc != nil && b.Fraction != 0:
		return nil, fmt.Errorf("proc = %d and fraction = %v are mutually exclusive; set exactly one", *b.Proc, b.Fraction)
	case b.Proc != nil:
		if *b.Proc < 0 || *b.Proc >= n {
			return nil, fmt.Errorf("proc = %d, want [0, %d)", *b.Proc, n)
		}
		return []int{*b.Proc}, nil
	case b.Fraction != 0:
		if math.IsNaN(b.Fraction) || b.Fraction < 0 || b.Fraction > 1 {
			return nil, fmt.Errorf("fraction = %v, want (0, 1]", b.Fraction)
		}
		// The nudge absorbs float error in the product: 0.3*10 is
		// 2.999...6 and must still select ⌊0.3·10⌋ = 3 liars.
		k := int(b.Fraction*float64(n) + 1e-9)
		if k == 0 {
			// An entry that marks nobody is always a spec mistake — the
			// author asked for liars and got a silent no-op.
			return nil, fmt.Errorf("fraction = %v selects floor(%v*%d) = 0 processors; raise the fraction or use proc", b.Fraction, b.Fraction, n)
		}
		procs := make([]int, 0, k)
		for p := n - k; p < n; p++ {
			procs = append(procs, p)
		}
		return procs, nil
	default:
		return nil, fmt.Errorf("exactly one of proc and fraction is required (both unset)")
	}
}

// Topology selects one of the built-in topologies.
type Topology struct {
	Kind string  `json:"kind"` // line|ring|star|complete|grid|torus|tree|hypercube|random
	W    int     `json:"w,omitempty"`
	H    int     `json:"h,omitempty"`
	B    int     `json:"b,omitempty"` // tree branching
	D    int     `json:"d,omitempty"` // hypercube dimension
	P    float64 `json:"p,omitempty"` // random extra-edge probability
	// Pairs lists explicit links for kind "custom".
	Pairs [][2]int `json:"pairs,omitempty"`
}

// LinkSpec is an assumption plus a delay model, optionally lossy.
type LinkSpec struct {
	Assumption AssumptionSpec `json:"assumption"`
	Delays     DelaySpec      `json:"delays"`
	// Loss drops each message on this link independently with the given
	// probability (wraps the delay model in sim.Lossy). Must be in [0, 1).
	Loss float64 `json:"loss,omitempty"`
}

// LinkOverride attaches a LinkSpec to one link.
type LinkOverride struct {
	P int `json:"p"`
	Q int `json:"q"`
	LinkSpec
}

// AssumptionSpec is the JSON form of a delay assumption.
type AssumptionSpec struct {
	Kind string `json:"kind"` // bounds|symmetricBounds|lowerOnly|noBounds|bias|and
	// bounds
	LBPQ float64 `json:"lbPQ,omitempty"`
	UBPQ float64 `json:"ubPQ,omitempty"` // 0 or negative means +Inf for lowerOnly-ish kinds; see Build
	LBQP float64 `json:"lbQP,omitempty"`
	UBQP float64 `json:"ubQP,omitempty"`
	// symmetricBounds
	LB float64 `json:"lb,omitempty"`
	UB float64 `json:"ub,omitempty"`
	// bias
	B float64 `json:"b,omitempty"`
	// and
	Parts []AssumptionSpec `json:"parts,omitempty"`
}

// Build converts the spec into an assumption value.
func (a AssumptionSpec) Build() (delay.Assumption, error) {
	switch a.Kind {
	case "bounds":
		return delay.NewBounds(delay.Range{LB: a.LBPQ, UB: orInf(a.UBPQ)}, delay.Range{LB: a.LBQP, UB: orInf(a.UBQP)})
	case "symmetricBounds":
		return delay.SymmetricBounds(a.LB, orInf(a.UB))
	case "lowerOnly":
		return delay.LowerOnly(a.LBPQ, a.LBQP)
	case "noBounds":
		return delay.NoBounds(), nil
	case "bias":
		return delay.NewRTTBias(a.B)
	case "and":
		parts := make([]delay.Assumption, 0, len(a.Parts))
		for _, ps := range a.Parts {
			p, err := ps.Build()
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return delay.NewIntersect(parts...)
	default:
		return nil, fmt.Errorf("scenario: unknown assumption kind %q", a.Kind)
	}
}

// orInf maps the JSON-friendly sentinel 0 to +Inf for upper bounds (an
// upper bound of exactly zero delay is useless in practice, so nothing of
// value is lost).
func orInf(ub float64) float64 {
	if ub <= 0 {
		return math.Inf(1)
	}
	return ub
}

// DelaySpec is the JSON form of a link delay model.
type DelaySpec struct {
	Kind string `json:"kind"` // symmetric|independent|biasWindow|congestion
	// symmetric
	Sampler *SamplerSpec `json:"sampler,omitempty"`
	// independent
	PQ *SamplerSpec `json:"pq,omitempty"`
	QP *SamplerSpec `json:"qp,omitempty"`
	// biasWindow
	Base  float64 `json:"base,omitempty"`
	Width float64 `json:"width,omitempty"`
	// congestion (wraps the inner spec with periodic episodes)
	Inner  *DelaySpec `json:"inner,omitempty"`
	Period float64    `json:"period,omitempty"`
	Duty   float64    `json:"duty,omitempty"`
	Surge  float64    `json:"surge,omitempty"`
	Phase  float64    `json:"phase,omitempty"`
}

// Build converts the spec into a link delay model.
func (d DelaySpec) Build() (sim.LinkDelays, error) {
	switch d.Kind {
	case "symmetric":
		if d.Sampler == nil {
			return nil, fmt.Errorf("scenario: symmetric delays need a sampler")
		}
		s, err := d.Sampler.Build()
		if err != nil {
			return nil, err
		}
		return sim.Symmetric(s), nil
	case "independent":
		if d.PQ == nil || d.QP == nil {
			return nil, fmt.Errorf("scenario: independent delays need pq and qp samplers")
		}
		pq, err := d.PQ.Build()
		if err != nil {
			return nil, err
		}
		qp, err := d.QP.Build()
		if err != nil {
			return nil, err
		}
		return sim.Independent{PQ: pq, QP: qp}, nil
	case "biasWindow":
		if d.Base < 0 || d.Width < 0 {
			return nil, fmt.Errorf("scenario: biasWindow base/width must be non-negative")
		}
		return sim.BiasWindow{Base: d.Base, Width: d.Width}, nil
	case "congestion":
		if d.Inner == nil {
			return nil, fmt.Errorf("scenario: congestion needs an inner delay spec")
		}
		if d.Period <= 0 || d.Duty < 0 || d.Duty > 1 || d.Surge < 0 {
			return nil, fmt.Errorf("scenario: congestion(period=%v, duty=%v, surge=%v) invalid", d.Period, d.Duty, d.Surge)
		}
		inner, err := d.Inner.Build()
		if err != nil {
			return nil, err
		}
		return sim.Congestion{Base: inner, Period: d.Period, Duty: d.Duty, Surge: d.Surge, Phase: d.Phase}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown delay kind %q", d.Kind)
	}
}

// SamplerSpec is the JSON form of a delay sampler.
type SamplerSpec struct {
	Kind string       `json:"kind"` // constant|uniform|shiftedExp|truncNormal|bimodal
	D    float64      `json:"d,omitempty"`
	Lo   float64      `json:"lo,omitempty"`
	Hi   float64      `json:"hi,omitempty"`
	Min  float64      `json:"min,omitempty"`
	Mean float64      `json:"mean,omitempty"`
	Mu   float64      `json:"mu,omitempty"`
	Sig  float64      `json:"sigma,omitempty"`
	A    *SamplerSpec `json:"a,omitempty"`
	B    *SamplerSpec `json:"b,omitempty"`
	PA   float64      `json:"pa,omitempty"`
}

// Build converts the spec into a sampler.
func (s SamplerSpec) Build() (sim.Sampler, error) {
	switch s.Kind {
	case "constant":
		if s.D < 0 {
			return nil, fmt.Errorf("scenario: constant delay %v negative", s.D)
		}
		return sim.Constant{D: s.D}, nil
	case "uniform":
		if s.Lo < 0 || s.Hi < s.Lo {
			return nil, fmt.Errorf("scenario: uniform range [%v,%v] invalid", s.Lo, s.Hi)
		}
		return sim.Uniform{Lo: s.Lo, Hi: s.Hi}, nil
	case "shiftedExp":
		if s.Min < 0 || s.Mean <= 0 {
			return nil, fmt.Errorf("scenario: shiftedExp(min=%v,mean=%v) invalid", s.Min, s.Mean)
		}
		return sim.ShiftedExp{Min: s.Min, Mean: s.Mean}, nil
	case "truncNormal":
		if s.Lo < 0 || s.Hi < s.Lo {
			return nil, fmt.Errorf("scenario: truncNormal window [%v,%v] invalid", s.Lo, s.Hi)
		}
		return sim.TruncNormal{Mu: s.Mu, Sigma: s.Sig, Lo: s.Lo, Hi: s.Hi}, nil
	case "bimodal":
		if s.A == nil || s.B == nil || s.PA < 0 || s.PA > 1 {
			return nil, fmt.Errorf("scenario: bimodal needs a, b and pa in [0,1]")
		}
		a, err := s.A.Build()
		if err != nil {
			return nil, err
		}
		b, err := s.B.Build()
		if err != nil {
			return nil, err
		}
		return sim.Bimodal{A: a, B: b, PA: s.PA}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown sampler kind %q", s.Kind)
	}
}

// ProtocolSpec selects the measurement protocol.
type ProtocolSpec struct {
	Kind    string  `json:"kind"` // burst|periodic|pingpong
	K       int     `json:"k,omitempty"`
	Spacing float64 `json:"spacing,omitempty"`
	Period  float64 `json:"period,omitempty"`
	Count   int     `json:"count,omitempty"`
	Rounds  int     `json:"rounds,omitempty"`
	// Warmup < 0 selects the safe automatic warmup (start spread + 1).
	Warmup float64 `json:"warmup"`
}

// Built is the executable form of a scenario.
type Built struct {
	Starts  []float64
	Net     *sim.Network
	Links   []core.Link
	Factory sim.ProtocolFactory
	RunCfg  sim.RunConfig
}

// Materialize builds the topology's link set.
func (t Topology) Materialize(n int, rng *rand.Rand) ([]sim.Pair, error) {
	switch t.Kind {
	case "line":
		return sim.Line(n), nil
	case "ring":
		return sim.Ring(n), nil
	case "star":
		return sim.Star(n), nil
	case "complete":
		return sim.Complete(n), nil
	case "grid":
		if t.W*t.H != n {
			return nil, fmt.Errorf("scenario: grid %dx%d does not cover %d processors", t.W, t.H, n)
		}
		return sim.Grid(t.W, t.H), nil
	case "torus":
		if t.W*t.H != n {
			return nil, fmt.Errorf("scenario: torus %dx%d does not cover %d processors", t.W, t.H, n)
		}
		return sim.Torus(t.W, t.H), nil
	case "tree":
		b := t.B
		if b == 0 {
			b = 2
		}
		return sim.Tree(n, b), nil
	case "hypercube":
		if 1<<t.D != n {
			return nil, fmt.Errorf("scenario: hypercube dim %d does not cover %d processors", t.D, n)
		}
		return sim.Hypercube(t.D), nil
	case "random":
		return sim.RandomConnected(rng, n, t.P), nil
	case "custom":
		pairs := make([]sim.Pair, len(t.Pairs))
		for i, e := range t.Pairs {
			pairs[i] = sim.Pair{P: e[0], Q: e[1]}
		}
		return pairs, nil
	default:
		return nil, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
}

// Build validates and materializes the scenario.
func (s *Scenario) Build() (*Built, error) {
	if s.Processors < 1 {
		return nil, fmt.Errorf("scenario: processors = %d, want >= 1", s.Processors)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	starts := s.Starts
	if len(starts) == 0 {
		spread := s.StartSpread
		if spread == 0 {
			spread = 1
		}
		starts = sim.UniformStarts(rng, s.Processors, spread)
	}
	if len(starts) != s.Processors {
		return nil, fmt.Errorf("scenario: %d starts for %d processors", len(starts), s.Processors)
	}
	pairs, err := s.Topology.Materialize(s.Processors, rng)
	if err != nil {
		return nil, err
	}
	if err := sim.Validate(s.Processors, pairs); err != nil {
		return nil, err
	}

	// Resolve per-link specs.
	inTopology := make(map[sim.Pair]bool, len(pairs))
	for _, e := range pairs {
		inTopology[canon(e)] = true
	}
	specFor := make(map[sim.Pair]LinkSpec, len(pairs))
	if s.DefaultLink != nil {
		for _, e := range pairs {
			specFor[canon(e)] = *s.DefaultLink
		}
	}
	for _, o := range s.Links {
		c := canon(sim.Pair{P: o.P, Q: o.Q})
		if !inTopology[c] {
			return nil, fmt.Errorf("scenario: link override (%d,%d) not in topology", o.P, o.Q)
		}
		specFor[c] = o.LinkSpec
	}
	if len(specFor) < len(pairs) {
		return nil, fmt.Errorf("scenario: %d of %d links lack a spec (set defaultLink)", len(pairs)-len(specFor), len(pairs))
	}

	delaysFor := make(map[sim.Pair]sim.LinkDelays, len(pairs))
	links := make([]core.Link, 0, len(pairs))
	for _, e := range pairs {
		c := canon(e)
		spec := specFor[c]
		a, err := spec.Assumption.Build()
		if err != nil {
			return nil, fmt.Errorf("scenario: link (%d,%d): %w", c.P, c.Q, err)
		}
		ld, err := spec.Delays.Build()
		if err != nil {
			return nil, fmt.Errorf("scenario: link (%d,%d): %w", c.P, c.Q, err)
		}
		if spec.Loss != 0 {
			if spec.Loss < 0 || spec.Loss >= 1 {
				return nil, fmt.Errorf("scenario: link (%d,%d): loss %v outside [0,1)", c.P, c.Q, spec.Loss)
			}
			ld = sim.Lossy{Inner: ld, P: spec.Loss}
		}
		delaysFor[c] = ld
		links = append(links, core.Link{P: model.ProcID(c.P), Q: model.ProcID(c.Q), A: a})
	}

	net, err := sim.NewNetwork(starts, pairs, func(p sim.Pair) sim.LinkDelays { return delaysFor[canon(p)] })
	if err != nil {
		return nil, err
	}

	factory, err := s.Protocol.factory(starts)
	if err != nil {
		return nil, err
	}
	faults, err := s.Faults.Build(s.Processors)
	if err != nil {
		return nil, err
	}
	if err := faults.Validate(s.Processors); err != nil {
		return nil, err
	}
	return &Built{
		Starts:  append([]float64(nil), starts...),
		Net:     net,
		Links:   links,
		Factory: factory,
		RunCfg:  sim.RunConfig{Seed: rng.Int63(), Faults: faults},
	}, nil
}

func (p ProtocolSpec) factory(starts []float64) (sim.ProtocolFactory, error) {
	warmup := p.Warmup
	if warmup < 0 {
		warmup = sim.SafeWarmup(starts) + 1
	}
	switch p.Kind {
	case "burst":
		k := p.K
		if k == 0 {
			k = 1
		}
		return sim.NewBurstFactory(k, p.Spacing, warmup), nil
	case "periodic":
		if p.Period <= 0 || p.Count <= 0 {
			return nil, fmt.Errorf("scenario: periodic needs positive period and count")
		}
		return sim.NewPeriodicFactory(p.Period, p.Count, warmup), nil
	case "pingpong":
		if p.Rounds <= 0 {
			return nil, fmt.Errorf("scenario: pingpong needs positive rounds")
		}
		return sim.NewPingPongFactory(p.Rounds, warmup), nil
	default:
		return nil, fmt.Errorf("scenario: unknown protocol kind %q", p.Kind)
	}
}

func canon(p sim.Pair) sim.Pair {
	if p.P > p.Q {
		return sim.Pair{P: p.Q, Q: p.P}
	}
	return p
}

// Parse decodes a scenario from JSON.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	return &s, nil
}

// Encode renders the scenario as indented JSON.
func (s *Scenario) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
