package scenario

import (
	"math"
	"strings"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/sim"
	"clocksync/internal/trace"
)

func validScenario() *Scenario {
	return &Scenario{
		Processors:  4,
		Seed:        7,
		StartSpread: 2,
		Topology:    Topology{Kind: "ring"},
		DefaultLink: &LinkSpec{
			Assumption: AssumptionSpec{Kind: "symmetricBounds", LB: 0.05, UB: 0.2},
			Delays:     DelaySpec{Kind: "symmetric", Sampler: &SamplerSpec{Kind: "uniform", Lo: 0.05, Hi: 0.2}},
		},
		Protocol: ProtocolSpec{Kind: "burst", K: 3, Spacing: 0.01, Warmup: -1},
	}
}

func TestBuildAndRunEndToEnd(t *testing.T) {
	b, err := validScenario().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	exec, err := sim.Run(b.Net, b.Factory, b.RunCfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tab, err := trace.Collect(exec, false)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	res, err := core.SynchronizeSystem(4, b.Links, tab, core.DefaultMLSOptions(), core.Options{})
	if err != nil {
		t.Fatalf("SynchronizeSystem: %v", err)
	}
	if math.IsInf(res.Precision, 1) {
		t.Error("precision infinite on connected scenario")
	}
	rho, err := core.Rho(b.Starts, res.Corrections)
	if err != nil {
		t.Fatalf("Rho: %v", err)
	}
	if rho > res.Precision+1e-9 {
		t.Errorf("rho %v exceeds precision %v", rho, res.Precision)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := validScenario()
	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Processors != s.Processors || parsed.Topology.Kind != s.Topology.Kind {
		t.Errorf("round trip mismatch: %+v", parsed)
	}
	if _, err := parsed.Build(); err != nil {
		t.Errorf("parsed scenario does not build: %v", err)
	}
}

func TestParseInvalidJSON(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"no processors", func(s *Scenario) { s.Processors = 0 }},
		{"bad topology", func(s *Scenario) { s.Topology.Kind = "moebius" }},
		{"starts length", func(s *Scenario) { s.Starts = []float64{0} }},
		{"no default link", func(s *Scenario) { s.DefaultLink = nil }},
		{"bad assumption", func(s *Scenario) { s.DefaultLink.Assumption.Kind = "psychic" }},
		{"bad sampler", func(s *Scenario) { s.DefaultLink.Delays.Sampler.Kind = "quantum" }},
		{"bad protocol", func(s *Scenario) { s.Protocol.Kind = "telepathy" }},
		{"grid mismatch", func(s *Scenario) { s.Topology = Topology{Kind: "grid", W: 3, H: 3} }},
		{"override off topology", func(s *Scenario) {
			s.Links = []LinkOverride{{P: 0, Q: 2, LinkSpec: *s.DefaultLink}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validScenario()
			tt.mutate(s)
			if _, err := s.Build(); err == nil {
				t.Error("Build accepted invalid scenario")
			}
		})
	}
}

func TestLinkOverride(t *testing.T) {
	s := validScenario()
	s.Links = []LinkOverride{{
		P: 0, Q: 1,
		LinkSpec: LinkSpec{
			Assumption: AssumptionSpec{Kind: "bias", B: 0.1},
			Delays:     DelaySpec{Kind: "biasWindow", Base: 0.2, Width: 0.05},
		},
	}}
	b, err := s.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	found := false
	for _, l := range b.Links {
		if l.P == 0 && l.Q == 1 {
			if !strings.Contains(l.A.String(), "bias") {
				t.Errorf("override not applied: %v", l.A)
			}
			found = true
		}
	}
	if !found {
		t.Error("link (0,1) missing")
	}
}

func TestAssumptionSpecKinds(t *testing.T) {
	tests := []struct {
		name string
		spec AssumptionSpec
		want string
	}{
		{"bounds", AssumptionSpec{Kind: "bounds", LBPQ: 0.1, UBPQ: 0.3, LBQP: 0.05, UBQP: 0.2}, "bounds"},
		{"bounds inf ub", AssumptionSpec{Kind: "bounds", LBPQ: 0.1}, "inf"},
		{"lowerOnly", AssumptionSpec{Kind: "lowerOnly", LBPQ: 0.1, LBQP: 0.2}, "inf"},
		{"noBounds", AssumptionSpec{Kind: "noBounds"}, "bounds"},
		{"bias", AssumptionSpec{Kind: "bias", B: 0.5}, "bias"},
		{"and", AssumptionSpec{Kind: "and", Parts: []AssumptionSpec{{Kind: "noBounds"}, {Kind: "bias", B: 1}}}, "and"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, err := tt.spec.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if !strings.Contains(a.String(), tt.want) {
				t.Errorf("assumption %v does not mention %q", a, tt.want)
			}
		})
	}
}

func TestSamplerSpecKinds(t *testing.T) {
	ok := []SamplerSpec{
		{Kind: "constant", D: 1},
		{Kind: "uniform", Lo: 0, Hi: 1},
		{Kind: "shiftedExp", Min: 0.1, Mean: 0.2},
		{Kind: "truncNormal", Mu: 1, Sig: 0.1, Lo: 0.5, Hi: 1.5},
		{Kind: "bimodal", A: &SamplerSpec{Kind: "constant", D: 1}, B: &SamplerSpec{Kind: "constant", D: 2}, PA: 0.5},
	}
	for _, spec := range ok {
		if _, err := spec.Build(); err != nil {
			t.Errorf("%s: %v", spec.Kind, err)
		}
	}
	bad := []SamplerSpec{
		{Kind: "constant", D: -1},
		{Kind: "uniform", Lo: 1, Hi: 0},
		{Kind: "shiftedExp", Min: 0.1},
		{Kind: "bimodal", PA: 2},
	}
	for _, spec := range bad {
		if _, err := spec.Build(); err == nil {
			t.Errorf("%s: invalid spec accepted", spec.Kind)
		}
	}
}

func TestTopologyKinds(t *testing.T) {
	tests := []struct {
		topo Topology
		n    int
		want int
	}{
		{Topology{Kind: "line"}, 4, 3},
		{Topology{Kind: "star"}, 4, 3},
		{Topology{Kind: "complete"}, 4, 6},
		{Topology{Kind: "grid", W: 2, H: 2}, 4, 4},
		{Topology{Kind: "torus", W: 3, H: 3}, 9, 18},
		{Topology{Kind: "tree", B: 2}, 7, 6},
		{Topology{Kind: "hypercube", D: 2}, 4, 4},
		{Topology{Kind: "custom", Pairs: [][2]int{{0, 1}, {1, 2}}}, 3, 2},
	}
	for _, tt := range tests {
		t.Run(tt.topo.Kind, func(t *testing.T) {
			s := validScenario()
			s.Processors = tt.n
			s.Topology = tt.topo
			b, err := s.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if got := len(b.Links); got != tt.want {
				t.Errorf("links = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestProtocolSpecKinds(t *testing.T) {
	for _, p := range []ProtocolSpec{
		{Kind: "burst", K: 2, Warmup: -1},
		{Kind: "periodic", Period: 0.5, Count: 3, Warmup: -1},
		{Kind: "pingpong", Rounds: 2, Warmup: -1},
	} {
		s := validScenario()
		s.Protocol = p
		b, err := s.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", p.Kind, err)
		}
		if _, err := sim.Run(b.Net, b.Factory, b.RunCfg); err != nil {
			t.Errorf("%s: Run: %v", p.Kind, err)
		}
	}
}

// TestFaultsSpecBuild: the faults section materializes into a simulator
// schedule attached to the run config, with the open-until sentinel mapped
// to forever.
func TestFaultsSpecBuild(t *testing.T) {
	s := validScenario()
	s.Faults = &FaultsSpec{
		Crashes:    []CrashSpec{{Proc: 2, At: 1.5}},
		Partitions: []PartitionSpec{{P: 0, Q: 1, From: 0.5}, {P: 1, Q: 2, From: 0, Until: 2}},
		Loss:       0.1,
	}
	b, err := s.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	f := b.RunCfg.Faults
	if f == nil {
		t.Fatal("faults not attached to the run config")
	}
	if len(f.Crashes) != 1 || f.Crashes[0].Proc != 2 || f.Crashes[0].At != 1.5 {
		t.Errorf("crashes = %+v", f.Crashes)
	}
	if len(f.Partitions) != 2 || !math.IsInf(f.Partitions[0].Until, 1) || f.Partitions[1].Until != 2 {
		t.Errorf("partitions = %+v", f.Partitions)
	}
	if f.Loss != 0.1 {
		t.Errorf("loss = %v", f.Loss)
	}
	if _, err := sim.Run(b.Net, b.Factory, b.RunCfg); err != nil {
		t.Errorf("faulty run: %v", err)
	}
}

// TestFaultsSpecRejected: invalid schedules are caught at Build time.
func TestFaultsSpecRejected(t *testing.T) {
	for name, f := range map[string]*FaultsSpec{
		"crash out of range": {Crashes: []CrashSpec{{Proc: 9, At: 1}}},
		"partition self":     {Partitions: []PartitionSpec{{P: 1, Q: 1, From: 0, Until: 1}}},
		"loss one":           {Loss: 1},
	} {
		s := validScenario()
		s.Faults = f
		if _, err := s.Build(); err == nil {
			t.Errorf("%s: Build accepted %+v", name, f)
		}
	}
}

// TestFaultsJSONRoundTrip: the faults section survives encode/parse.
func TestFaultsJSONRoundTrip(t *testing.T) {
	s := validScenario()
	s.Faults = &FaultsSpec{Crashes: []CrashSpec{{Proc: 1, At: 2}}, Loss: 0.25}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Faults == nil || back.Faults.Loss != 0.25 || len(back.Faults.Crashes) != 1 {
		t.Errorf("faults did not round-trip: %+v", back.Faults)
	}
}

// TestLinkLoss: a per-link loss probability wraps the delay model in the
// lossy adapter; invalid probabilities are rejected.
func TestLinkLoss(t *testing.T) {
	s := validScenario()
	s.DefaultLink.Loss = 0.2
	b, err := s.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ld := b.Net.Delays(0, 1)
	lossy, ok := ld.(sim.Lossy)
	if !ok {
		t.Fatalf("link delays are %T, want sim.Lossy", ld)
	}
	if lossy.P != 0.2 {
		t.Errorf("lossy P = %v, want 0.2", lossy.P)
	}

	s.DefaultLink.Loss = 1.0
	if _, err := s.Build(); err == nil {
		t.Error("loss = 1.0 accepted")
	}
	s.DefaultLink.Loss = -0.1
	if _, err := s.Build(); err == nil {
		t.Error("negative loss accepted")
	}
}

// TestByzantineJSONRoundTrip: the byzantine faults section survives
// encode/parse and builds the expected simulator entries.
func TestByzantineJSONRoundTrip(t *testing.T) {
	liar := 2
	s := validScenario()
	s.Faults = &FaultsSpec{Byzantine: []ByzantineSpec{
		{Proc: &liar, Strategy: "skew", Magnitude: 0.25, Seed: 11},
		{Fraction: 0.5, Strategy: "deflate", Magnitude: 0.1},
	}}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Faults == nil || len(back.Faults.Byzantine) != 2 {
		t.Fatalf("byzantine entries did not round-trip: %+v", back.Faults)
	}
	got := back.Faults.Byzantine
	if got[0].Proc == nil || *got[0].Proc != liar || got[0].Strategy != "skew" ||
		got[0].Magnitude != 0.25 || got[0].Seed != 11 {
		t.Errorf("entry 0 round-tripped to %+v", got[0])
	}
	if got[1].Proc != nil || got[1].Fraction != 0.5 || got[1].Strategy != "deflate" {
		t.Errorf("entry 1 round-tripped to %+v", got[1])
	}

	faults, err := back.Faults.Build(s.Processors)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// One explicit liar plus floor(0.5*4)=2 highest-numbered processors.
	want := []sim.Byzantine{
		{Proc: 2, Strategy: sim.ByzSkew, Magnitude: 0.25, Seed: 11},
		{Proc: 2, Strategy: sim.ByzDeflate, Magnitude: 0.1},
		{Proc: 3, Strategy: sim.ByzDeflate, Magnitude: 0.1},
	}
	if len(faults.Byzantine) != len(want) {
		t.Fatalf("built %d byzantine entries, want %d: %+v", len(faults.Byzantine), len(want), faults.Byzantine)
	}
	for i := range want {
		if faults.Byzantine[i] != want[i] {
			t.Errorf("entry %d = %+v, want %+v", i, faults.Byzantine[i], want[i])
		}
	}
}

// TestByzantineFractionTruncation: ⌊fraction·n⌋ must not lose a liar to
// float error — 0.3*10 is 2.999...6 in binary and naive int() gives 2.
func TestByzantineFractionTruncation(t *testing.T) {
	for _, tt := range []struct {
		fraction float64
		n, want  int
	}{
		{0.3, 10, 3},
		{0.7, 10, 7}, // 6.999...
		{0.5, 4, 2},
	} {
		spec := ByzantineSpec{Fraction: tt.fraction, Strategy: "inflate"}
		procs, err := spec.procs(tt.n)
		if err != nil {
			t.Fatalf("fraction %v n %d: %v", tt.fraction, tt.n, err)
		}
		if len(procs) != tt.want {
			t.Errorf("fraction %v n %d selected %d liars, want %d", tt.fraction, tt.n, len(procs), tt.want)
		}
	}
	// ⌊0.1·3⌋ = 0: an entry that selects nobody is rejected, not a silent
	// no-op.
	spec := ByzantineSpec{Fraction: 0.1, Strategy: "inflate"}
	if _, err := spec.procs(3); err == nil {
		t.Error("fraction selecting zero processors accepted")
	}
}

// TestByzantineSpecValidation: malformed byzantine entries are rejected
// with descriptive errors.
func TestByzantineSpecValidation(t *testing.T) {
	neg, high, ok := -1, 9, 1
	for name, f := range map[string]*FaultsSpec{
		"unknown strategy":          {Byzantine: []ByzantineSpec{{Proc: &ok, Strategy: "liar"}}},
		"proc negative":             {Byzantine: []ByzantineSpec{{Proc: &neg, Strategy: "inflate"}}},
		"proc out of range":         {Byzantine: []ByzantineSpec{{Proc: &high, Strategy: "inflate"}}},
		"fraction above one":        {Byzantine: []ByzantineSpec{{Fraction: 1.5, Strategy: "inflate"}}},
		"fraction negative":         {Byzantine: []ByzantineSpec{{Fraction: -0.5, Strategy: "inflate"}}},
		"neither proc nor fraction": {Byzantine: []ByzantineSpec{{Strategy: "inflate"}}},
		"both proc and fraction":    {Byzantine: []ByzantineSpec{{Proc: &ok, Fraction: 0.5, Strategy: "inflate"}}},
		"negative magnitude":        {Byzantine: []ByzantineSpec{{Proc: &ok, Strategy: "inflate", Magnitude: -1}}},
	} {
		s := validScenario()
		s.Faults = f
		if _, err := s.Build(); err == nil {
			t.Errorf("%s: Build accepted %+v", name, f.Byzantine)
		}
	}
}

// TestFaultValidationFieldPaths: every malformed faults entry is rejected
// with an error naming the exact JSON field path and offending value —
// the contract generated (fuzzer-emitted) scenarios rely on.
func TestFaultValidationFieldPaths(t *testing.T) {
	two := 2
	for name, tt := range map[string]struct {
		faults   *FaultsSpec
		wantPath string
	}{
		"loss out of range": {
			&FaultsSpec{Loss: 1.5}, "faults.loss = 1.5",
		},
		"loss NaN": {
			&FaultsSpec{Loss: math.NaN()}, "faults.loss",
		},
		"crash proc range": {
			&FaultsSpec{Crashes: []CrashSpec{{Proc: 0, At: 1}, {Proc: 9, At: 1}}}, "faults.crashes[1].proc = 9",
		},
		"crash at NaN": {
			&FaultsSpec{Crashes: []CrashSpec{{Proc: 1, At: math.NaN()}}}, "faults.crashes[0].at",
		},
		"partition endpoint range": {
			&FaultsSpec{Partitions: []PartitionSpec{{P: 0, Q: 17}}}, "faults.partitions[0] = (0, 17)",
		},
		"partition self": {
			&FaultsSpec{Partitions: []PartitionSpec{{P: 2, Q: 2}}}, "faults.partitions[0] = (2, 2)",
		},
		"byzantine strategy": {
			&FaultsSpec{Byzantine: []ByzantineSpec{{Proc: &two, Strategy: "nope"}}}, `faults.byzantine[0].strategy = "nope"`,
		},
		"byzantine magnitude": {
			&FaultsSpec{Byzantine: []ByzantineSpec{{Proc: &two, Strategy: "inflate", Magnitude: -2}}}, "faults.byzantine[0].magnitude = -2",
		},
		"byzantine neither": {
			&FaultsSpec{Byzantine: []ByzantineSpec{{Strategy: "inflate"}}}, "faults.byzantine[0]",
		},
		"byzantine fraction selects nobody": {
			&FaultsSpec{Byzantine: []ByzantineSpec{{Fraction: 0.1, Strategy: "inflate"}}}, "faults.byzantine[0]",
		},
	} {
		s := validScenario()
		s.Faults = tt.faults
		_, err := s.Build()
		if err == nil {
			t.Errorf("%s: accepted %+v", name, tt.faults)
			continue
		}
		if !strings.Contains(err.Error(), tt.wantPath) {
			t.Errorf("%s: error %q does not name %q", name, err, tt.wantPath)
		}
	}
}

// TestFaultValidationErrorsRoundTrip: the same malformed entries, pushed
// through JSON encode/parse first — the errors must be identical, so a
// reproducer file diagnoses exactly like the in-memory scenario.
func TestFaultValidationErrorsRoundTrip(t *testing.T) {
	s := validScenario()
	s.Faults = &FaultsSpec{Byzantine: []ByzantineSpec{{Fraction: 0.1, Strategy: "inflate"}}}
	_, direct := s.Build()
	if direct == nil {
		t.Fatal("empty-selection byzantine entry accepted")
	}
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	_, roundTripped := back.Build()
	if roundTripped == nil {
		t.Fatal("empty-selection byzantine entry accepted after round trip")
	}
	if direct.Error() != roundTripped.Error() {
		t.Errorf("error drifted across JSON round trip:\n direct: %v\n parsed: %v", direct, roundTripped)
	}
}

// TestCommentRoundTrip: the provenance comment survives encode/parse and
// has no effect on Build.
func TestCommentRoundTrip(t *testing.T) {
	s := validScenario()
	s.Comment = "promoted genfuzz golden: generator seed 42"
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Comment != s.Comment {
		t.Errorf("comment round-tripped to %q", back.Comment)
	}
	if _, err := back.Build(); err != nil {
		t.Errorf("comment affected Build: %v", err)
	}
	plain := validScenario()
	pb, err := plain.Build()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := back.Build()
	if err != nil {
		t.Fatal(err)
	}
	if pb.RunCfg.Seed != cb.RunCfg.Seed {
		t.Error("comment perturbed the derived run seed")
	}
}
