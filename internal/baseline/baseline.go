// Package baseline implements the comparison algorithms the evaluation
// measures the optimal synchronizer against:
//
//   - NoOp: no correction at all (reads off the raw start-time skews).
//   - MidpointTree: NTP-style pairwise midpoint offset estimation
//     propagated over a BFS spanning tree.
//   - LLAverage: Lundelius-Lynch-style averaging for complete graphs.
//   - HMM: Halpern-Megiddo-Munshi '85 — the one-message-per-direction
//     special case of the paper's framework, with [lb,ub] bounds.
//
// A baseline maps an execution's views to a correction vector; it has no
// precision guarantee of its own. The verifier evaluates both the realized
// discrepancy and the guaranteed precision of any correction vector, so
// experiments can compare baselines and the optimal algorithm on equal
// terms.
package baseline

import (
	"fmt"
	"math"

	"clocksync/internal/core"
	"clocksync/internal/model"
	"clocksync/internal/trace"
)

// Baseline computes clock corrections from an execution's observable part.
type Baseline interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Corrections returns one correction per processor; the root's is 0.
	Corrections(e *model.Execution, root model.ProcID) ([]float64, error)
}

// NoOp applies no correction.
type NoOp struct{}

var _ Baseline = NoOp{}

// Name returns "noop".
func (NoOp) Name() string { return "noop" }

// Corrections returns the zero vector.
func (NoOp) Corrections(e *model.Execution, _ model.ProcID) ([]float64, error) {
	return make([]float64, e.N()), nil
}

// MidpointTree estimates per-link skew with the classic midpoint formula
// skew(q-p) ~= (d~min(q->p) - d~min(p->q)) / 2 and accumulates estimates
// along a BFS spanning tree from the root. This is the practical scheme at
// the heart of NTP-like protocols; it is exact when the two directions'
// minimum-delay samples are equal and degrades with delay asymmetry.
type MidpointTree struct{}

var _ Baseline = MidpointTree{}

// Name returns "midpoint-tree".
func (MidpointTree) Name() string { return "midpoint-tree" }

// Corrections runs BFS over pairs with bidirectional traffic.
func (MidpointTree) Corrections(e *model.Execution, root model.ProcID) ([]float64, error) {
	tab, err := trace.Collect(e, false)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	n := e.N()
	if int(root) < 0 || int(root) >= n {
		return nil, fmt.Errorf("baseline: root p%d out of range", root)
	}
	x := make([]float64, n)
	seen := make([]bool, n)
	seen[root] = true
	queue := []model.ProcID{root}
	visited := 1
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for q := 0; q < n; q++ {
			if seen[q] || model.ProcID(q) == p {
				continue
			}
			pq := tab.Stats(p, model.ProcID(q))
			qp := tab.Stats(model.ProcID(q), p)
			if pq.Empty() || qp.Empty() {
				continue // midpoint needs both directions
			}
			// Estimate S_q - S_p and chain the correction.
			skew := (qp.Min - pq.Min) / 2
			x[q] = x[p] + skew
			seen[q] = true
			visited++
			queue = append(queue, model.ProcID(q))
		}
	}
	if visited != n {
		return nil, fmt.Errorf("baseline: bidirectional traffic reaches only %d of %d processors", visited, n)
	}
	return x, nil
}

// LLAverage is the averaging scheme of Lundelius and Lynch for complete
// graphs: every processor's correction is the mean of the midpoint skew
// estimates to all processors, which aligns all corrected clocks to the
// estimated average start time. It needs bidirectional traffic between
// every pair.
type LLAverage struct{}

var _ Baseline = LLAverage{}

// Name returns "ll-average".
func (LLAverage) Name() string { return "ll-average" }

// Corrections averages the pairwise midpoint estimates.
func (LLAverage) Corrections(e *model.Execution, root model.ProcID) ([]float64, error) {
	tab, err := trace.Collect(e, false)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	n := e.N()
	x := make([]float64, n)
	for p := 0; p < n; p++ {
		sum := 0.0
		for r := 0; r < n; r++ {
			if r == p {
				continue
			}
			rp := tab.Stats(model.ProcID(r), model.ProcID(p))
			pr := tab.Stats(model.ProcID(p), model.ProcID(r))
			if rp.Empty() || pr.Empty() {
				return nil, fmt.Errorf("baseline: ll-average needs complete bidirectional traffic; pair (p%d,p%d) is silent", p, r)
			}
			// d~(p->r) - d~(r->p) = (d1 - d2) + 2(S_p - S_r), so half the
			// difference estimates S_p - S_r.
			sum += (pr.Min - rp.Min) / 2
		}
		x[p] = sum / float64(n)
	}
	// Normalize so the root correction is zero (comparability).
	if int(root) >= 0 && int(root) < n {
		r := x[root]
		for i := range x {
			x[i] -= r
		}
	}
	return x, nil
}

// HMM is the Halpern-Megiddo-Munshi '85 algorithm: optimal synchronization
// when exactly one message is sent in each direction of each link and
// [lb,ub] bounds are known. It is the special case the paper reduces to;
// here it deliberately uses only the first message of each direction, so
// on multi-message traces it is strictly weaker than the full algorithm.
type HMM struct {
	// Links carries the [lb,ub] assumptions per link (the same values the
	// optimal algorithm receives).
	Links []core.Link
}

var _ Baseline = HMM{}

// Name returns "hmm85".
func (HMM) Name() string { return "hmm85" }

// Corrections synthesizes a first-message-only trace and runs the SHIFTS
// pipeline on it.
func (h HMM) Corrections(e *model.Execution, root model.ProcID) ([]float64, error) {
	msgs, err := e.Messages()
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	n := e.N()
	// Keep only the earliest-sent message per direction.
	first := make(map[[2]model.ProcID]model.Message, len(msgs))
	for _, m := range msgs {
		key := [2]model.ProcID{m.From, m.To}
		if cur, ok := first[key]; !ok || m.SendClock < cur.SendClock {
			first[key] = m
		}
	}
	tab := trace.NewTable(n, false)
	for _, m := range first {
		if err := tab.Add(trace.Sample{From: m.From, To: m.To, SendClock: m.SendClock, RecvClock: m.RecvClock}); err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
	}
	res, err := core.SynchronizeSystem(n, h.Links, tab, core.DefaultMLSOptions(), core.Options{Root: int(root)})
	if err != nil {
		return nil, fmt.Errorf("baseline: hmm85: %w", err)
	}
	if math.IsInf(res.Precision, 1) {
		return nil, fmt.Errorf("baseline: hmm85: system not connected by first messages")
	}
	return res.Corrections, nil
}
