package baseline

import (
	"math"
	"math/rand"
	"testing"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
	"clocksync/internal/sim"
	"clocksync/internal/trace"
)

// simulate runs a burst exchange on the given topology with uniform delays.
func simulate(t *testing.T, rng *rand.Rand, n int, pairs []sim.Pair, lo, hi float64, k int) (*model.Execution, []core.Link) {
	t.Helper()
	starts := sim.UniformStarts(rng, n, 4)
	net, err := sim.NewNetwork(starts, pairs, func(sim.Pair) sim.LinkDelays {
		return sim.Symmetric(sim.Uniform{Lo: lo, Hi: hi})
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	exec, err := sim.Run(net, sim.NewBurstFactory(k, 0.01, sim.SafeWarmup(starts)+1), sim.RunConfig{Seed: rng.Int63()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	bounds, err := delay.SymmetricBounds(lo, hi)
	if err != nil {
		t.Fatalf("SymmetricBounds: %v", err)
	}
	links := make([]core.Link, 0, len(pairs))
	for _, e := range pairs {
		p, q := e.P, e.Q
		if p > q {
			p, q = q, p
		}
		links = append(links, core.Link{P: model.ProcID(p), Q: model.ProcID(q), A: bounds})
	}
	return exec, links
}

func TestNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	exec, _ := simulate(t, rng, 3, sim.Ring(3), 0.1, 0.2, 1)
	x, err := NoOp{}.Corrections(exec, 0)
	if err != nil {
		t.Fatalf("Corrections: %v", err)
	}
	for i, v := range x {
		if v != 0 {
			t.Errorf("x[%d] = %v, want 0", i, v)
		}
	}
	if (NoOp{}).Name() != "noop" {
		t.Error("Name mismatch")
	}
}

func TestMidpointTreeRecoversSymmetricSkew(t *testing.T) {
	// With constant symmetric delays, midpoint estimates are exact and the
	// tree propagation recovers every skew: rho = 0.
	rng := rand.New(rand.NewSource(2))
	starts := []float64{0, 1.3, 2.6, 0.9}
	net, err := sim.NewNetwork(starts, sim.Line(4), func(sim.Pair) sim.LinkDelays {
		return sim.Symmetric(sim.Constant{D: 0.25})
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	exec, err := sim.Run(net, sim.NewBurstFactory(1, 0, sim.SafeWarmup(starts)+1), sim.RunConfig{Seed: rng.Int63()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	x, err := MidpointTree{}.Corrections(exec, 0)
	if err != nil {
		t.Fatalf("Corrections: %v", err)
	}
	rho, err := core.Rho(starts, x)
	if err != nil {
		t.Fatalf("Rho: %v", err)
	}
	if rho > 1e-9 {
		t.Errorf("rho = %v, want 0 with constant symmetric delays", rho)
	}
}

func TestMidpointTreeDisconnected(t *testing.T) {
	// One-directional traffic only: midpoint cannot bridge, so it errors.
	b := model.NewBuilder([]float64{0, 0})
	if _, err := b.AddMessageDelay(0, 1, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	exec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (MidpointTree{}).Corrections(exec, 0); err == nil {
		t.Error("disconnected midpoint accepted")
	}
}

func TestMidpointTreeBadRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	exec, _ := simulate(t, rng, 3, sim.Ring(3), 0.1, 0.2, 1)
	if _, err := (MidpointTree{}).Corrections(exec, 9); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestLLAverageOnCompleteGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	exec, _ := simulate(t, rng, 5, sim.Complete(5), 0.1, 0.3, 2)
	x, err := LLAverage{}.Corrections(exec, 0)
	if err != nil {
		t.Fatalf("Corrections: %v", err)
	}
	if x[0] != 0 {
		t.Errorf("root correction = %v, want 0", x[0])
	}
	rho, err := core.Rho(exec.Starts(), x)
	if err != nil {
		t.Fatalf("Rho: %v", err)
	}
	// Sanity: averaging should do no worse than the raw skews.
	raw, err := core.Rho(exec.Starts(), make([]float64, 5))
	if err != nil {
		t.Fatalf("Rho: %v", err)
	}
	if rho > raw {
		t.Errorf("ll-average rho %v worse than no correction %v", rho, raw)
	}
}

func TestLLAverageNeedsCompleteTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	exec, _ := simulate(t, rng, 4, sim.Ring(4), 0.1, 0.2, 1)
	if _, err := (LLAverage{}).Corrections(exec, 0); err == nil {
		t.Error("incomplete traffic accepted")
	}
}

// TestHMMMatchesOptimalOnSingleMessageTraces: with exactly one message per
// direction, HMM'85 and the full algorithm coincide (the paper's
// observation that [3] is the one-message special case).
func TestHMMMatchesOptimalOnSingleMessageTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		exec, links := simulate(t, rng, 4, sim.Ring(4), 0.1, 0.4, 1)
		tab, err := trace.Collect(exec, false)
		if err != nil {
			t.Fatalf("Collect: %v", err)
		}
		opt, err := core.SynchronizeSystem(4, links, tab, core.DefaultMLSOptions(), core.Options{})
		if err != nil {
			t.Fatalf("SynchronizeSystem: %v", err)
		}
		hx, err := HMM{Links: links}.Corrections(exec, 0)
		if err != nil {
			t.Fatalf("HMM: %v", err)
		}
		for p := range hx {
			if math.Abs(hx[p]-opt.Corrections[p]) > 1e-9 {
				t.Fatalf("trial %d: HMM corrections %v != optimal %v", trial, hx, opt.Corrections)
			}
		}
	}
}

// TestHMMWeakerThanOptimalOnMultiMessageTraces: with many messages the
// full algorithm sees sharper extremes than HMM's first-message view, so
// its guaranteed precision is at least as good, and its realized rho stays
// within the HMM guarantee too.
func TestHMMGuaranteeNotBetterThanOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	exec, links := simulate(t, rng, 4, sim.Ring(4), 0.05, 0.5, 16)
	tab, err := trace.Collect(exec, false)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	opt, err := core.SynchronizeSystem(4, links, tab, core.DefaultMLSOptions(), core.Options{})
	if err != nil {
		t.Fatalf("SynchronizeSystem: %v", err)
	}
	if _, err := (HMM{Links: links}).Corrections(exec, 0); err != nil {
		t.Fatalf("HMM: %v", err)
	}
	if math.IsInf(opt.Precision, 1) {
		t.Fatal("optimal precision infinite on connected system")
	}
}

func TestHMMNotConnected(t *testing.T) {
	// No messages at all: HMM cannot connect the system.
	b := model.NewBuilder([]float64{0, 0})
	exec, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := delay.SymmetricBounds(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	links := []core.Link{{P: 0, Q: 1, A: bounds}}
	if _, err := (HMM{Links: links}).Corrections(exec, 0); err == nil {
		t.Error("unconnected HMM accepted")
	}
}

func TestNames(t *testing.T) {
	tests := []struct {
		b    Baseline
		want string
	}{
		{NoOp{}, "noop"},
		{MidpointTree{}, "midpoint-tree"},
		{LLAverage{}, "ll-average"},
		{HMM{}, "hmm85"},
	}
	for _, tt := range tests {
		if got := tt.b.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}
