package netsync

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clocksync/internal/core"
	"clocksync/internal/model"
	"clocksync/internal/obs"
	"clocksync/internal/trace"
)

// Connection-lifecycle observability: every event counts into the node's
// own NetStats (inspect with (*Node).Stats) and into the process-wide
// obs default registry; the logger is a nop unless obs.SetLogger ran.
var (
	nLog = obs.For("netsync")

	gDials         = obs.Default.Counter("netsync.dials")
	gDialRetries   = obs.Default.Counter("netsync.dial.retries")
	gDialFailures  = obs.Default.Counter("netsync.dial.failures")
	gReconnects    = obs.Default.Counter("netsync.reconnects")
	gProbesSent    = obs.Default.Counter("netsync.probes.sent")
	gProbeSendErrs = obs.Default.Counter("netsync.probes.senderrors")
	gProbesRecv    = obs.Default.Counter("netsync.probes.received")
	gReports       = obs.Default.Counter("netsync.reports.received")
	gDupReports    = obs.Default.Counter("netsync.reports.duplicate")
	gLateReports   = obs.Default.Counter("netsync.reports.late")
	gDeadlines     = obs.Default.Counter("netsync.deadline.expirations")
	gGraceFires    = obs.Default.Counter("netsync.grace.fires")
	gAuthFailures  = obs.Default.Counter("netsync.auth.failures")
	gProtoErrors   = obs.Default.Counter("netsync.protocol.errors")
)

// netCounters tracks one node's connection-lifecycle events (atomic:
// probing, serving and reporting run on separate goroutines).
type netCounters struct {
	dials, dialRetries, dialFailures, reconnects   atomic.Int64
	probesSent, probeSendErrors, probesReceived    atomic.Int64
	reportsReceived, duplicateReports, lateReports atomic.Int64
	deadlineExpirations, graceFires                atomic.Int64
	authFailures, protocolErrors                   atomic.Int64
}

// NetStats is a point-in-time snapshot of a node's connection-lifecycle
// counters — events that were previously invisible (silent retries,
// reconnects, expired deadlines).
type NetStats struct {
	// Dials counts successful TCP connects; DialRetries the backoff
	// retries behind them; DialFailures the peers given up on after
	// DialAttempts tries.
	Dials, DialRetries, DialFailures int64
	// Reconnects counts probe/report streams re-established after
	// breaking mid-flight.
	Reconnects int64
	// Probe traffic on this node's side of each stream.
	ProbesSent, ProbeSendErrors, ProbesReceived int64
	// Coordinator-side report accounting.
	ReportsReceived, DuplicateReports, LateReports int64
	// DeadlineExpirations counts read/write deadlines that fired;
	// GraceFires counts report-grace deadlines that forced a degraded
	// compute.
	DeadlineExpirations, GraceFires int64
	// AuthFailures counts frames rejected in a keyed cluster because the
	// claimed origin had no key or the MAC did not verify — probes are
	// dropped, reports are treated as loss.
	AuthFailures int64
	// ProtocolErrors counts well-formed frames that were invalid in
	// context — an unexpected type, a report to a non-coordinator, an
	// out-of-range origin — each of which closes the offending connection
	// instead of failing the node.
	ProtocolErrors int64
}

// Stats snapshots the node's lifecycle counters.
func (n *Node) Stats() NetStats {
	return NetStats{
		Dials:               n.stats.dials.Load(),
		DialRetries:         n.stats.dialRetries.Load(),
		DialFailures:        n.stats.dialFailures.Load(),
		Reconnects:          n.stats.reconnects.Load(),
		ProbesSent:          n.stats.probesSent.Load(),
		ProbeSendErrors:     n.stats.probeSendErrors.Load(),
		ProbesReceived:      n.stats.probesReceived.Load(),
		ReportsReceived:     n.stats.reportsReceived.Load(),
		DuplicateReports:    n.stats.duplicateReports.Load(),
		LateReports:         n.stats.lateReports.Load(),
		DeadlineExpirations: n.stats.deadlineExpirations.Load(),
		GraceFires:          n.stats.graceFires.Load(),
		AuthFailures:        n.stats.authFailures.Load(),
		ProtocolErrors:      n.stats.protocolErrors.Load(),
	}
}

// noteNetErr classifies a connection error: expired read/write deadlines
// feed the deadline counter.
func (n *Node) noteNetErr(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		n.stats.deadlineExpirations.Add(1)
		gDeadlines.Inc()
	}
}

// Config describes one node of a cluster.
type Config struct {
	// ID is this node's dense index in [0, N).
	ID model.ProcID
	// N is the cluster size.
	N int
	// Listen is the address to listen on (use "127.0.0.1:0" for tests).
	Listen string
	// Peers maps neighbor ids to their listen addresses. Probes flow to
	// every peer listed here; list both directions' neighbors.
	Peers map[model.ProcID]string
	// Coordinator is the id of the collecting node.
	Coordinator model.ProcID
	// CoordinatorAddr is its address (unused on the coordinator itself).
	CoordinatorAddr string
	// Links carries the per-link delay assumptions; only the coordinator
	// uses them (global configuration, as in any deployment).
	Links []core.Link
	// Probes is the number of probe messages sent to each peer.
	Probes int
	// Interval separates consecutive probes.
	Interval time.Duration
	// ClockOffset emulates this node's unknown clock skew. In a real
	// deployment the hardware clock supplies it implicitly; here it is
	// ground truth for tests.
	ClockOffset time.Duration
	// Jitter adds a uniform [0, Jitter) artificial transmission delay to
	// every probe, making delays visible above localhost noise. The
	// declared assumptions must cover it.
	Jitter time.Duration
	// Seed drives the jitter randomness.
	Seed int64
	// Timeout bounds every network wait, reads and writes alike
	// (default 10s).
	Timeout time.Duration
	// ReportGrace is how long the coordinator waits for missing reports
	// after its own report is ready before computing from whichever subset
	// arrived (degraded quorum). Default: Timeout. A dead node therefore
	// delays the cluster by at most ReportGrace instead of wedging it.
	ReportGrace time.Duration
	// DialAttempts is the number of connection attempts per peer before
	// the peer is declared dead (default 4).
	DialAttempts int
	// DialBackoff is the initial retry backoff, doubled per attempt with
	// jitter (default 50ms).
	DialBackoff time.Duration
	// DialMaxBackoff caps the backoff growth (default 1s).
	DialMaxBackoff time.Duration
	// ReportDelay is the minimum node age before the incoming statistics
	// are snapshotted and reported: it gives peers (possibly started
	// later) time to finish probing. Default 500ms + Probes*Interval.
	ReportDelay time.Duration
	// Centered selects centered corrections at the coordinator.
	Centered bool
	// Trace, when non-nil, records this node's causal spans: the probe
	// burst, per-peer dials, the report exchange, and receive marks
	// parented across the wire to the sending node's spans. On the
	// coordinator the trace additionally carries the round root span
	// (obs.RootSpanID), the collect/compute phases, and — reassembled
	// from the Spans shipped inside report frames — every reporter's
	// local spans, yielding one cluster-wide round trace exportable as
	// obs.Trace JSON or Chrome trace_event. The trace's correlation id is
	// set to DeriveTraceID(Seed) at Start. Span Start values are each
	// process's wall clock relative to its own trace origin, so cross-host
	// timelines align only as well as the hosts' wall clocks do.
	Trace *obs.Trace
	// Round labels this run's spans, wire trace context and
	// flight-recorder entry (multi-round deployments bump it per round).
	Round int
	// Session, when non-empty, labels the coordinator's quality metrics
	// (session="...") and the flight-recorder entry, keeping concurrent
	// clusters in one process distinguishable.
	Session string
	// Keys is the cluster's HMAC-SHA256 keyring, mapping node ids to
	// their signing keys. When non-nil it must be complete — one non-empty
	// key per id in [0, N), enforced by validate — and this node signs
	// both its probe and its report frames with Keys[ID]. Receivers drop
	// frames whose claimed origin is out of range or whose MAC does not
	// verify under that origin's key — counted in netsync.auth.failures;
	// a rejected report is treated as loss, a rejected probe as a lost
	// probe — so a forged frame degrades the outcome instead of
	// corrupting it. An on-path attacker can still replay a captured
	// probe, which only re-presents a slower observation — the same power
	// as delaying traffic, which no keyring prevents. Nil preserves the
	// unauthenticated wire format (back-compat, trusted network).
	// Distribute the keyring out of band.
	Keys map[model.ProcID][]byte
}

func (c *Config) fill() {
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Probes == 0 {
		c.Probes = 4
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.ReportDelay == 0 {
		c.ReportDelay = 500*time.Millisecond + time.Duration(c.Probes)*c.Interval
	}
	if c.ReportGrace == 0 {
		c.ReportGrace = c.Timeout
	}
	if c.DialAttempts == 0 {
		c.DialAttempts = 4
	}
	if c.DialBackoff == 0 {
		c.DialBackoff = 50 * time.Millisecond
	}
	if c.DialMaxBackoff == 0 {
		c.DialMaxBackoff = time.Second
	}
}

func (c *Config) validate() error {
	if c.N < 1 || int(c.ID) < 0 || int(c.ID) >= c.N {
		return fmt.Errorf("netsync: id %d out of range [0,%d)", c.ID, c.N)
	}
	if int(c.Coordinator) < 0 || int(c.Coordinator) >= c.N {
		return fmt.Errorf("netsync: coordinator %d out of range", c.Coordinator)
	}
	if c.ID != c.Coordinator && c.CoordinatorAddr == "" {
		return fmt.Errorf("netsync: node %d needs the coordinator address", c.ID)
	}
	for id := range c.Peers {
		if int(id) < 0 || int(id) >= c.N || id == c.ID {
			return fmt.Errorf("netsync: invalid peer id %d", id)
		}
	}
	if c.Keys != nil {
		if len(c.Keys[c.ID]) == 0 {
			return fmt.Errorf("netsync: keyed cluster but no key for own id %d", c.ID)
		}
		for id, key := range c.Keys {
			if int(id) < 0 || int(id) >= c.N {
				return fmt.Errorf("netsync: key for id %d out of range [0,%d)", id, c.N)
			}
			if len(key) == 0 {
				return fmt.Errorf("netsync: empty key for id %d", id)
			}
		}
		// A hole in the keyring would leave frames claiming that origin
		// verifiable under no key at all; require completeness so every
		// origin check resolves to a real key.
		for p := 0; p < c.N; p++ {
			if _, ok := c.Keys[model.ProcID(p)]; !ok {
				return fmt.Errorf("netsync: incomplete keyring: no key for id %d (a keyed cluster needs one per node in [0,%d))", p, c.N)
			}
		}
	}
	return nil
}

// Outcome is a node's view of the finished synchronization.
type Outcome struct {
	// Correction is this node's clock correction: corrected clock =
	// Clock() + Correction.
	Correction float64
	// Precision is the coordinator-computed optimal guaranteed precision
	// of the coordinator's synchronized component.
	Precision float64
	// Corrections is the full vector (as disseminated).
	Corrections []float64
	// Degraded is set when the coordinator computed without the full
	// report set or when the reporting subgraph split.
	Degraded bool
	// Missing lists the nodes whose reports never arrived.
	Missing []model.ProcID
	// Synced flags membership in the coordinator's synchronized
	// component; the precision guarantee covers exactly these nodes.
	Synced []bool
}

// Node is one running cluster member. Create with Start, collect with
// Wait, always Shutdown.
type Node struct {
	cfg      Config
	epoch    time.Time
	born     time.Time
	listener net.Listener
	rng      *rand.Rand

	stats netCounters

	mu         sync.Mutex
	incoming   map[model.ProcID]trace.DirStats // per-peer incoming probe stats
	reports    map[model.ProcID][]LinkStats    // coordinator: collected reports
	pending    []*conn                         // coordinator: report conns awaiting results
	computed   bool                            // coordinator: result already produced
	result     *Message                        // coordinator: stored result for late reports
	grace      *time.Timer                     // coordinator: report deadline
	roundEnd   func()                          // coordinator: closes the round root span
	collectEnd func()                          // coordinator: closes the collect span

	wg       sync.WaitGroup
	stopping chan struct{}
	outcome  chan Outcome
	errs     chan error
}

// Start validates the config, binds the listener and launches the node's
// goroutines. The returned node is running; call Wait for the outcome and
// Shutdown to release resources.
func Start(cfg Config) (*Node, error) {
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netsync: listen: %w", err)
	}
	n := &Node{
		cfg:      cfg,
		epoch:    time.Unix(0, 0),
		born:     time.Now(),
		listener: ln,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.ID)<<32)),
		incoming: make(map[model.ProcID]trace.DirStats),
		reports:  make(map[model.ProcID][]LinkStats),
		stopping: make(chan struct{}),
		outcome:  make(chan Outcome, 1),
		errs:     make(chan error, 8),
	}
	if cfg.Trace != nil {
		cfg.Trace.SetTraceID(DeriveTraceID(cfg.Seed))
		if cfg.ID == cfg.Coordinator {
			// The round root: the well-known ancestor every participant
			// parents its top-level spans under, no handshake needed.
			n.roundEnd = cfg.Trace.StartSpan("round", -1, cfg.Round, obs.RootSpanID, 0)
		}
	}
	n.wg.Add(2)
	n.goSafe(n.acceptLoop)
	n.goSafe(n.run)
	return n, nil
}

// goSafe runs fn on its own goroutine, converting a panic into a node
// failure surfaced on the errs channel instead of crashing the whole
// process. All node goroutines must launch through it: the baregoroutine
// analyzer (internal/analysis) flags naked go statements in this package.
func (n *Node) goSafe(fn func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				n.fail(fmt.Errorf("netsync: node %d: goroutine panic: %v", n.cfg.ID, r))
			}
		}()
		fn()
	}()
}

// Addr returns the bound listen address (resolves ":0" ports).
func (n *Node) Addr() string { return n.listener.Addr().String() }

// Clock returns this node's clock reading: seconds since the epoch plus
// the configured offset.
func (n *Node) Clock() float64 {
	return time.Since(n.epoch).Seconds() + n.cfg.ClockOffset.Seconds()
}

// Wait blocks until the node has applied a correction, a node goroutine
// failed, or the timeout expires.
func (n *Node) Wait(timeout time.Duration) (*Outcome, error) {
	select {
	case out := <-n.outcome:
		return &out, nil
	case err := <-n.errs:
		return nil, err
	case <-time.After(timeout):
		return nil, fmt.Errorf("netsync: node %d timed out waiting for the result", n.cfg.ID)
	}
}

// Shutdown stops the node and waits for its goroutines to exit. Parked
// report connections (if the result never materialized) are closed.
func (n *Node) Shutdown() {
	select {
	case <-n.stopping:
	default:
		close(n.stopping)
	}
	_ = n.listener.Close()
	n.mu.Lock()
	if n.grace != nil {
		n.grace.Stop()
	}
	for _, pc := range n.pending {
		_ = pc.close()
	}
	n.pending = nil
	n.mu.Unlock()
	n.wg.Wait()
}

func (n *Node) fail(err error) {
	if err == nil {
		return
	}
	select {
	case n.errs <- err:
	default:
	}
}

// acceptLoop serves inbound connections: probe streams from peers and, on
// the coordinator, report connections from every node.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		raw, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.stopping:
				return // normal shutdown
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			n.fail(fmt.Errorf("netsync: accept: %w", err))
			return
		}
		handlers.Add(1)
		n.goSafe(func() {
			defer handlers.Done()
			n.serve(newConn(raw))
		})
	}
}

// noteAuthFailure counts one rejected frame in a keyed cluster.
func (n *Node) noteAuthFailure(kind string, origin model.ProcID, c *conn) {
	n.stats.authFailures.Add(1)
	gAuthFailures.Inc()
	nLog.Debug(kind+" rejected by authentication", "node", n.cfg.ID, "origin", origin,
		"remote", c.raw.RemoteAddr().String())
}

// noteProtoErr counts a well-formed frame that is invalid in context. The
// caller closes the connection; the node itself keeps running — a single
// hostile or confused peer must not be able to terminate it.
func (n *Node) noteProtoErr(c *conn, format string, args ...any) {
	n.stats.protocolErrors.Add(1)
	gProtoErrors.Inc()
	nLog.Debug("protocol error: closing connection", "node", n.cfg.ID,
		"remote", c.raw.RemoteAddr().String(), "err", fmt.Sprintf(format, args...))
}

// verifyFrame authenticates one inbound frame in a keyed cluster: the
// claimed origin must be a real node id (validate guarantees the keyring
// covers all of them) and the MAC must verify under that origin's key.
// Never pass a missing-id's nil key to verifyMessage — HMAC under an
// empty key is computable by anyone.
func (n *Node) verifyFrame(origin model.ProcID, m *Message) bool {
	if int(origin) < 0 || int(origin) >= n.cfg.N {
		return false
	}
	key, ok := n.cfg.Keys[origin]
	if !ok || len(key) == 0 {
		return false
	}
	return verifyMessage(key, m)
}

// serve handles one inbound connection until EOF or shutdown.
func (n *Node) serve(c *conn) {
	parked := false
	defer func() {
		if !parked {
			_ = c.close()
		}
	}()
	for {
		m, err := c.recv(n.cfg.Timeout)
		if err != nil {
			n.noteNetErr(err)
			return // EOF, deadline or shutdown: connection done
		}
		switch m.Type {
		case "probe":
			recvClock := n.Clock()
			if n.cfg.Keys != nil && !n.verifyFrame(m.From, m) {
				// Forged or tampered probe: drop it like a lost message.
				n.noteAuthFailure("probe", m.From, c)
				return
			}
			n.stats.probesReceived.Add(1)
			gProbesRecv.Inc()
			if m.Span != 0 {
				// Cross-wire causal link: the receive mark's parent is the
				// sender's probe span, shipped in the frame (and MAC-covered
				// in keyed clusters).
				n.cfg.Trace.Mark("probe.recv", int(n.cfg.ID), m.Round, m.Span)
			}
			n.mu.Lock()
			st, ok := n.incoming[m.From]
			if !ok {
				st = trace.NewDirStats()
			}
			st.Add(recvClock - m.SendClock) // Lemma 6.1 on a real socket
			n.incoming[m.From] = st
			n.mu.Unlock()
		case "report":
			if n.cfg.ID != n.cfg.Coordinator {
				n.noteProtoErr(c, "non-coordinator %d received a report", n.cfg.ID)
				return
			}
			if int(m.Origin) < 0 || int(m.Origin) >= n.cfg.N {
				// An out-of-range origin would inflate the report quorum
				// (or, with links attached, poison the table build); it can
				// never be legitimate, keyed or not.
				n.noteProtoErr(c, "report origin %d out of range [0,%d)", m.Origin, n.cfg.N)
				return
			}
			if n.cfg.Keys != nil && !n.verifyFrame(m.Origin, m) {
				// Forged or tampered report: count it and treat it as loss.
				// The origin's links stay constrained by the honest
				// endpoints' statistics, exactly like a report that never
				// arrived.
				n.noteAuthFailure("report", m.Origin, c)
				return
			}
			n.stats.reportsReceived.Add(1)
			gReports.Inc()
			nLog.Debug("report received", "node", n.cfg.ID, "origin", m.Origin,
				"links", len(m.Links), "remote", c.raw.RemoteAddr().String())
			if n.cfg.Trace != nil {
				// Reassemble the cluster trace: merge the reporter's local
				// spans (ids are collision-free across nodes) and mark the
				// receipt, parented to the reporter's report.send span.
				if m.Span != 0 {
					n.cfg.Trace.Mark("report.recv", int(m.Origin), m.Round, m.Span)
				}
				n.cfg.Trace.AddSpans(m.Spans)
			}
			// Ownership of the connection moves to the pending list; it is
			// answered and closed when the result is ready.
			parked = true
			n.handleReport(c, m)
			return
		default:
			// A well-formed frame of a type this side never expects (e.g. a
			// "result" pushed at a listener). Hostile input: close the
			// connection, keep the node.
			n.noteProtoErr(c, "unexpected %q frame on an inbound connection", m.Type)
			return
		}
	}
}

// run drives the node's active side: probing, reporting, applying.
func (n *Node) run() {
	defer n.wg.Done()
	tr := n.cfg.Trace
	probeSpan, endProbe := tr.StartChild("probe", int(n.cfg.ID), n.cfg.Round, obs.RootSpanID)
	err := n.probePeers(probeSpan)
	endProbe()
	if err != nil {
		n.fail(err)
		return
	}
	// Hold the report until peers (possibly started later) have had time
	// to finish their own probing toward us.
	if wait := n.cfg.ReportDelay - time.Since(n.born); wait > 0 {
		select {
		case <-time.After(wait):
		case <-n.stopping:
			return
		}
	}
	// Snapshot this node's incoming statistics as its report.
	n.mu.Lock()
	report := Message{Type: "report", Origin: n.cfg.ID}
	for from, st := range n.incoming {
		report.Links = append(report.Links, LinkStats{
			From: from, To: n.cfg.ID, Count: st.Count, Min: st.Min, Max: st.Max,
		})
	}
	n.mu.Unlock()
	if tr != nil && n.cfg.ID != n.cfg.Coordinator {
		// Attach the trace context and ship every span recorded so far
		// (dials, the probe burst, probe receipts) for the coordinator's
		// cluster-trace reassembly. Must precede signing: the MAC covers
		// these fields.
		report.TraceID = tr.TraceID()
		report.Round = n.cfg.Round
		report.Span = tr.Mark("report.send", int(n.cfg.ID), n.cfg.Round, obs.RootSpanID)
		report.Spans = tr.Spans()
	}
	if n.cfg.Keys != nil {
		if err := signMessage(n.cfg.Keys[n.cfg.ID], &report); err != nil {
			n.fail(err)
			return
		}
	}

	if n.cfg.ID == n.cfg.Coordinator {
		// Register our own readiness; the links are re-snapshotted live at
		// compute time, so late probes into the coordinator still count.
		// From here on, missing reports hold the result up for at most
		// ReportGrace: the deadline computes from whichever subset arrived.
		n.mu.Lock()
		if !n.computed {
			n.collectEnd = tr.StartSpan("collect", -1, n.cfg.Round, tr.NewSpanID(-1), obs.RootSpanID)
		}
		n.absorbReportLocked(&report, nil)
		if !n.computed {
			n.grace = time.AfterFunc(n.cfg.ReportGrace, n.reportDeadline)
		}
		n.mu.Unlock()
		return
	}

	// The report connection retries the dial with backoff and, on a broken
	// stream, reconnects and resends once — a coordinator restart or a
	// dropped connection costs a retry, not the node.
	_, endReport := tr.StartChild("report", int(n.cfg.ID), n.cfg.Round, obs.RootSpanID)
	res, err := n.reportAndAwait(&report)
	endReport()
	if err != nil {
		n.fail(err)
		return
	}
	n.applyResult(res)
}

// reportAndAwait delivers the report to the coordinator and waits for the
// result, reconnecting once if the exchange breaks mid-flight.
func (n *Node) reportAndAwait(report *Message) (*Message, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			n.stats.reconnects.Add(1)
			gReconnects.Inc()
			nLog.Debug("report exchange broke; reconnecting", "node", n.cfg.ID,
				"addr", n.cfg.CoordinatorAddr, "err", lastErr)
		}
		c, err := n.dialRetry(n.cfg.CoordinatorAddr, "coordinator", obs.RootSpanID)
		if err != nil {
			return nil, fmt.Errorf("netsync: dial coordinator: %w", err)
		}
		if err := c.send(report, n.cfg.Timeout); err != nil {
			_ = c.close()
			n.noteNetErr(err)
			lastErr = fmt.Errorf("netsync: send report: %w", err)
			continue
		}
		res, err := c.recv(n.cfg.Timeout)
		_ = c.close()
		if err != nil {
			n.noteNetErr(err)
			lastErr = fmt.Errorf("netsync: await result: %w", err)
			continue
		}
		return res, nil
	}
	return nil, lastErr
}

// reportDeadline fires when the coordinator's report grace expires: the
// computation proceeds with whichever reports arrived.
func (n *Node) reportDeadline() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.computed {
		return
	}
	n.stats.graceFires.Add(1)
	gGraceFires.Inc()
	nLog.Debug("report grace expired: computing from quorum",
		"node", n.cfg.ID, "reports", len(n.reports), "n", n.cfg.N)
	n.computeAndDisseminateLocked()
}

// dialRetry dials with exponential backoff and jitter; what labels the
// target ("coordinator", "peer 3") for counters and debug logs, parent
// the enclosing trace span for the recorded "dial" span. Called only
// from the run goroutine (it shares the node's rng).
func (n *Node) dialRetry(addr, what string, parent obs.SpanID) (*conn, error) {
	_, endDial := n.cfg.Trace.StartChild("dial", int(n.cfg.ID), n.cfg.Round, parent)
	defer endDial()
	backoff := n.cfg.DialBackoff
	var lastErr error
	for attempt := 0; attempt < n.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			n.stats.dialRetries.Add(1)
			gDialRetries.Inc()
			nLog.Debug("dial retry", "node", n.cfg.ID, "peer", what, "addr", addr,
				"attempt", attempt+1, "backoff", backoff, "err", lastErr)
			sleep := time.Duration(float64(backoff) * (0.5 + n.rng.Float64()))
			select {
			case <-time.After(sleep):
			case <-n.stopping:
				return nil, fmt.Errorf("netsync: node %d stopped while dialing %s", n.cfg.ID, addr)
			}
			backoff *= 2
			if backoff > n.cfg.DialMaxBackoff {
				backoff = n.cfg.DialMaxBackoff
			}
		}
		raw, err := net.DialTimeout("tcp", addr, n.cfg.Timeout)
		if err == nil {
			n.stats.dials.Add(1)
			gDials.Inc()
			nLog.Debug("dialed", "node", n.cfg.ID, "peer", what, "addr", addr, "attempt", attempt+1)
			return newConn(raw), nil
		}
		lastErr = err
	}
	n.stats.dialFailures.Add(1)
	gDialFailures.Inc()
	nLog.Debug("dial failed: giving up", "node", n.cfg.ID, "peer", what, "addr", addr,
		"attempts", n.cfg.DialAttempts, "err", lastErr)
	return nil, fmt.Errorf("netsync: dial %s: %d attempts: %w", addr, n.cfg.DialAttempts, lastErr)
}

// probePeers sends the timestamped probe bursts over per-peer
// connections. Probes across peers are interleaved round by round. A peer
// that cannot be reached — dial failure after retries, or a stream that
// breaks and cannot be re-established — is dropped, not fatal: its links
// simply carry no statistics and degrade to the assumption bounds.
func (n *Node) probePeers(span obs.SpanID) error {
	conns := make(map[model.ProcID]*conn, len(n.cfg.Peers))
	defer func() {
		for _, c := range conns {
			_ = c.close()
		}
	}()
	for id, addr := range n.cfg.Peers {
		c, err := n.dialRetry(addr, fmt.Sprintf("peer %d", id), span)
		if err != nil {
			continue // dead peer: skip it, keep the node alive
		}
		conns[id] = c
	}
	for round := 0; round < n.cfg.Probes; round++ {
		for id, c := range conns {
			if err := n.sendProbe(c, span); err != nil {
				// Broken stream: reconnect once and resend (with a fresh
				// timestamp — a stale stamp would inflate the measured
				// delay past the declared bounds).
				_ = c.close()
				n.stats.reconnects.Add(1)
				gReconnects.Inc()
				nLog.Debug("probe stream broke; reconnecting", "node", n.cfg.ID,
					"peer", id, "err", err)
				nc, derr := n.dialRetry(n.cfg.Peers[id], fmt.Sprintf("peer %d", id), span)
				if derr != nil {
					delete(conns, id)
					continue
				}
				conns[id] = nc
				if err := n.sendProbe(nc, span); err != nil {
					_ = nc.close()
					delete(conns, id)
				}
			}
		}
		select {
		case <-time.After(n.cfg.Interval):
		case <-n.stopping:
			return fmt.Errorf("netsync: node %d stopped during probing", n.cfg.ID)
		}
	}
	return nil
}

// sendProbe stamps and sends one probe, optionally holding it back by the
// configured artificial jitter (stamp first, then delay, exactly like a
// slow link). In a keyed cluster the probe carries a MAC so receivers can
// reject injected timestamps. span is the node's probe-burst span, sent
// as the frame's trace context so the receiver can parent its receive
// mark across the wire.
func (n *Node) sendProbe(c *conn, span obs.SpanID) error {
	sendClock := n.Clock()
	if n.cfg.Jitter > 0 {
		time.Sleep(time.Duration(n.rng.Float64() * float64(n.cfg.Jitter)))
	}
	m := &Message{Type: "probe", From: n.cfg.ID, SendClock: sendClock}
	if n.cfg.Trace != nil {
		m.TraceID = n.cfg.Trace.TraceID()
		m.Span = span
		m.Round = n.cfg.Round
	}
	if n.cfg.Keys != nil {
		if err := signMessage(n.cfg.Keys[n.cfg.ID], m); err != nil {
			return err
		}
	}
	err := c.send(m, n.cfg.Timeout)
	if err != nil {
		n.stats.probeSendErrors.Add(1)
		gProbeSendErrs.Inc()
		n.noteNetErr(err)
		return err
	}
	n.stats.probesSent.Add(1)
	gProbesSent.Inc()
	return nil
}

// handleReport runs on the coordinator for each inbound report connection:
// absorb, and when complete compute and disseminate.
func (n *Node) handleReport(c *conn, m *Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.absorbReportLocked(m, c)
}

// absorbReportLocked merges one report; the caller holds n.mu. conn is nil
// for the coordinator's own report. A report arriving after the deadline
// already computed is answered immediately with the stored result, so a
// slow node still receives its correction.
func (n *Node) absorbReportLocked(m *Message, c *conn) {
	if n.computed {
		n.stats.lateReports.Add(1)
		gLateReports.Inc()
		nLog.Debug("late report answered with stored result",
			"node", n.cfg.ID, "origin", m.Origin)
		if c != nil {
			_ = c.send(n.result, n.cfg.Timeout)
			_ = c.close()
		}
		return
	}
	if _, dup := n.reports[m.Origin]; dup {
		n.stats.duplicateReports.Add(1)
		gDupReports.Inc()
		nLog.Debug("duplicate report rejected", "node", n.cfg.ID, "origin", m.Origin)
		if c != nil {
			_ = c.send(&Message{Type: "result", Err: "duplicate report"}, n.cfg.Timeout)
			_ = c.close()
		}
		return
	}
	n.reports[m.Origin] = m.Links
	if c != nil {
		n.pending = append(n.pending, c)
	}
	if len(n.reports) < n.cfg.N {
		return
	}
	n.computeAndDisseminateLocked()
}

// computeAndDisseminateLocked assembles the table from whichever reports
// arrived, runs the pipeline restricted to the reporting subgraph, and
// answers every parked report connection. Caller holds n.mu.
func (n *Node) computeAndDisseminateLocked() {
	n.computed = true
	if n.grace != nil {
		n.grace.Stop()
	}
	if n.collectEnd != nil {
		n.collectEnd()
		n.collectEnd = nil
	}
	tr := n.cfg.Trace
	computeSpan, endCompute := tr.StartChild("compute", -1, n.cfg.Round, obs.RootSpanID)
	rec := obs.RoundRecord{Session: n.cfg.Session, Round: n.cfg.Round}
	tab := trace.NewTable(n.cfg.N, false)
	var buildErr error
	for origin, links := range n.reports {
		if origin == n.cfg.ID {
			continue // replaced by the live snapshot below
		}
		for _, ls := range links {
			if ls.To != origin {
				buildErr = fmt.Errorf("netsync: report from %d claims stats for %d", origin, ls.To)
				break
			}
			st, err := ls.toDirStats()
			if err != nil {
				buildErr = err
				break
			}
			if err := tab.MergeStats(ls.From, ls.To, st); err != nil {
				buildErr = err
				break
			}
		}
	}
	// The coordinator's own incoming statistics, live (not the possibly
	// stale early snapshot).
	if buildErr == nil {
		for from, st := range n.incoming {
			if err := tab.MergeStats(from, n.cfg.ID, st); err != nil {
				buildErr = err
				break
			}
		}
	}
	msg := Message{Type: "result"}
	var missing []model.ProcID
	for p := 0; p < n.cfg.N; p++ {
		if _, ok := n.reports[model.ProcID(p)]; !ok {
			missing = append(missing, model.ProcID(p))
		}
	}
	if buildErr == nil {
		// With reports missing, restrict to links with at least one
		// reporting endpoint: the reporter's incoming statistics cover its
		// direction (Lemma 6.1) and the assumption bounds cover the other.
		links := n.cfg.Links
		if len(missing) > 0 {
			links = nil
			for _, l := range n.cfg.Links {
				_, pOK := n.reports[l.P]
				_, qOK := n.reports[l.Q]
				if pOK || qOK {
					links = append(links, l)
				}
			}
		}
		// Quality telemetry rides on the solve: the coordinator is the one
		// place that sees the whole instance, so it publishes the paper's
		// figures of merit after every compute.
		opts := core.Options{
			Root: int(n.cfg.Coordinator), Centered: n.cfg.Centered,
			Quality: true, QualityLabel: n.cfg.Session,
			Observer: obs.PhaseFunc(func(phase string, seconds float64) {
				rec.AddPhase(phase, seconds)
			}),
		}
		if tco := tr.ObserverChild(-1, n.cfg.Round, computeSpan); tco != nil {
			inner := opts.Observer
			opts.Observer = obs.PhaseFunc(func(phase string, seconds float64) {
				inner.ObservePhase(phase, seconds)
				tco.ObservePhase(phase, seconds)
			})
		}
		res, err := core.SynchronizeSystem(n.cfg.N, links, tab, core.DefaultMLSOptions(), opts)
		if err != nil {
			buildErr = err
		} else {
			rep := core.AssessQuality(res)
			rec.Achieved, rec.Optimal, rec.Ratio = rep.Achieved, rep.Optimal, rep.Ratio
			synced := make([]bool, n.cfg.N)
			precision := res.Precision
			for ci, comp := range res.Components {
				if !containsProc(comp, int(n.cfg.Coordinator)) {
					continue
				}
				precision = res.ComponentPrecision[ci]
				for _, p := range comp {
					synced[p] = true
				}
				msg.Synced = synced
				if msg.Degraded = len(missing) > 0 || len(comp) < n.cfg.N; msg.Degraded {
					msg.Missing = missing
				}
				break
			}
			msg.Corrections = res.Corrections
			msg.Precision = precision // finite: the coordinator component's A_max
		}
	}
	endCompute()
	if buildErr != nil {
		msg.Err = buildErr.Error()
	}
	for _, pc := range n.pending {
		_ = pc.send(&msg, n.cfg.Timeout)
		_ = pc.close()
	}
	n.pending = nil
	n.result = &msg
	n.recordRound(&rec, &msg, buildErr)
	if n.roundEnd != nil {
		n.roundEnd()
		n.roundEnd = nil
	}
	if buildErr != nil {
		n.fail(buildErr)
		return
	}
	// Apply locally on the coordinator.
	n.applyResult(&msg)
}

// recordRound files the finished round into the process flight recorder
// so it can be replayed at /debug/rounds or dumped on degraded exit.
func (n *Node) recordRound(rec *obs.RoundRecord, msg *Message, buildErr error) {
	rec.Precision = msg.Precision
	if math.IsNaN(rec.Precision) || math.IsInf(rec.Precision, 0) {
		rec.Precision = -1
	}
	rec.Missing = len(msg.Missing)
	for _, ok := range msg.Synced {
		if ok {
			rec.Synced++
		}
	}
	rec.AuthFailures = int(n.stats.authFailures.Load())
	switch {
	case buildErr != nil:
		rec.Outcome = "failed"
		rec.Err = buildErr.Error()
	case msg.Degraded:
		rec.Outcome = "degraded"
	default:
		rec.Outcome = "ok"
	}
	rec.WallSeconds = time.Since(n.born).Seconds()
	obs.Rounds.Record(*rec)
}

func containsProc(comp []int, p int) bool {
	for _, q := range comp {
		if q == p {
			return true
		}
	}
	return false
}

// applyResult validates and publishes the outcome for this node.
func (n *Node) applyResult(m *Message) {
	if m.Err != "" {
		n.fail(fmt.Errorf("netsync: coordinator: %s", m.Err))
		return
	}
	if m.Type != "result" || int(n.cfg.ID) >= len(m.Corrections) {
		n.fail(fmt.Errorf("netsync: malformed result for node %d", n.cfg.ID))
		return
	}
	out := Outcome{
		Correction:  m.Corrections[n.cfg.ID],
		Precision:   m.Precision,
		Corrections: append([]float64(nil), m.Corrections...),
		Degraded:    m.Degraded,
		Missing:     append([]model.ProcID(nil), m.Missing...),
		Synced:      append([]bool(nil), m.Synced...),
	}
	n.publishNodeMetrics()
	select {
	case n.outcome <- out:
	default:
	}
}

// publishNodeMetrics snapshots this node's lifecycle counters into
// per-node labeled gauges (netsync.node.*{node="<id>"}), so a /metrics
// scrape separates the nodes that the process-wide netsync.* counters
// aggregate. Called once per run at outcome time — cheap and idempotent.
func (n *Node) publishNodeMetrics() {
	s := n.Stats()
	id := strconv.Itoa(int(n.cfg.ID))
	set := func(name string, v int64) {
		obs.Default.Gauge(obs.Labeled("netsync.node."+name, "node", id)).Set(float64(v))
	}
	set("dials", s.Dials)
	set("probes.sent", s.ProbesSent)
	set("probes.received", s.ProbesReceived)
	set("reports.received", s.ReportsReceived)
	set("auth.failures", s.AuthFailures)
	set("protocol.errors", s.ProtocolErrors)
}
