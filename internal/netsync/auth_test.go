package netsync

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"clocksync/internal/core"
	"clocksync/internal/model"
)

// TestClusterAuthenticated: a fully keyed cluster synchronizes end to end
// exactly like an unauthenticated one — every report verifies, nothing is
// rejected, and the corrections recover the offsets.
func TestClusterAuthenticated(t *testing.T) {
	offsets := []time.Duration{0, 90 * time.Millisecond, -50 * time.Millisecond}
	keys := DeriveKeys(len(offsets), 424242)
	nodes := startCluster(t, offsets, time.Millisecond, 0.5, func(c *Config) {
		c.Keys = keys
	})
	outs := make([]*Outcome, len(nodes))
	for i, node := range nodes {
		out, err := node.Wait(8 * time.Second)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		outs[i] = out
	}
	if af := nodes[0].Stats().AuthFailures; af != 0 {
		t.Fatalf("honest keyed cluster rejected %d reports", af)
	}
	starts := make([]float64, len(offsets))
	for p, off := range offsets {
		starts[p] = -off.Seconds()
	}
	rho, err := core.Rho(starts, outs[0].Corrections)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(outs[0].Precision, 1) {
		t.Fatal("infinite precision")
	}
	if rho > outs[0].Precision+1e-9 {
		t.Fatalf("realized %v exceeds precision %v", rho, outs[0].Precision)
	}
}

// TestForgedReportRejected: a network-level attacker who owns no key
// injects a report in an honest node's name. The coordinator rejects the
// frame (counted as an auth failure), treats it as loss, and the genuine
// cluster still completes with sound corrections.
func TestForgedReportRejected(t *testing.T) {
	offsets := []time.Duration{0, 70 * time.Millisecond, -40 * time.Millisecond}
	keys := DeriveKeys(len(offsets), 99)
	nodes := startCluster(t, offsets, time.Millisecond, 0.5, func(c *Config) {
		c.Keys = keys
	})

	// The forgery claims impossibly fast statistics for node 1's links,
	// signed with no key at all — the MAC cannot verify.
	raw, err := net.Dial("tcp", nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	forged := &Message{
		Type:   "report",
		Origin: 1,
		Links: []LinkStats{
			{From: 0, To: 1, Count: 4, Min: 0.0001, Max: 0.0002},
			{From: 2, To: 1, Count: 4, Min: 0.0001, Max: 0.0002},
		},
		MAC: []byte("not a real mac"),
	}
	if err := c.send(forged, 2*time.Second); err != nil {
		t.Fatalf("send forged report: %v", err)
	}
	// The coordinator drops the frame and closes the connection; the
	// close is our acknowledgment that the frame was processed.
	if _, err := c.recv(4 * time.Second); err == nil {
		t.Fatal("forged report was answered instead of dropped")
	}
	_ = c.close()

	outs := make([]*Outcome, len(nodes))
	for i, node := range nodes {
		out, err := node.Wait(8 * time.Second)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		outs[i] = out
	}
	if af := nodes[0].Stats().AuthFailures; af != 1 {
		t.Fatalf("AuthFailures = %d, want 1", af)
	}
	starts := make([]float64, len(offsets))
	for p, off := range offsets {
		starts[p] = -off.Seconds()
	}
	rho, err := core.Rho(starts, outs[0].Corrections)
	if err != nil {
		t.Fatal(err)
	}
	if rho > outs[0].Precision+1e-9 {
		t.Fatalf("realized %v exceeds precision %v", rho, outs[0].Precision)
	}
}

// TestForgedReportEmptyKeyMAC: the classic bypass — a keyless attacker
// MACs a forged report under the empty key, hoping the receiver looks up
// a missing origin and verifies under nil. The keyring is complete and
// the origin's real key is used, so the forgery is rejected and the
// cluster completes.
func TestForgedReportEmptyKeyMAC(t *testing.T) {
	offsets := []time.Duration{0, 60 * time.Millisecond, -30 * time.Millisecond}
	keys := DeriveKeys(len(offsets), 7)
	nodes := startCluster(t, offsets, time.Millisecond, 0.5, func(c *Config) {
		c.Keys = keys
	})

	raw, err := net.Dial("tcp", nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	forged := &Message{
		Type:   "report",
		Origin: 1,
		Links:  []LinkStats{{From: 0, To: 1, Count: 4, Min: 0.0001, Max: 0.0002}},
	}
	if err := signMessage(nil, forged); err != nil { // what any keyless attacker can compute
		t.Fatal(err)
	}
	if err := c.send(forged, 2*time.Second); err != nil {
		t.Fatalf("send forged report: %v", err)
	}
	if _, err := c.recv(4 * time.Second); err == nil {
		t.Fatal("empty-key forgery was answered instead of dropped")
	}
	_ = c.close()

	waitClusterSound(t, nodes, offsets)
	if af := nodes[0].Stats().AuthFailures; af != 1 {
		t.Fatalf("AuthFailures = %d, want 1", af)
	}
}

// TestForgedReportOutOfRangeOrigin: a report claiming a nonexistent
// origin can never be legitimate; it is a protocol error — the quorum
// count must not inflate and the round must not fail.
func TestForgedReportOutOfRangeOrigin(t *testing.T) {
	offsets := []time.Duration{0, 60 * time.Millisecond, -30 * time.Millisecond}
	keys := DeriveKeys(len(offsets), 8)
	nodes := startCluster(t, offsets, time.Millisecond, 0.5, func(c *Config) {
		c.Keys = keys
	})

	raw, err := net.Dial("tcp", nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	forged := &Message{Type: "report", Origin: 99}
	if err := signMessage(nil, forged); err != nil {
		t.Fatal(err)
	}
	if err := c.send(forged, 2*time.Second); err != nil {
		t.Fatalf("send forged report: %v", err)
	}
	if _, err := c.recv(4 * time.Second); err == nil {
		t.Fatal("out-of-range origin was answered instead of dropped")
	}
	_ = c.close()

	waitClusterSound(t, nodes, offsets)
	if pe := nodes[0].Stats().ProtocolErrors; pe != 1 {
		t.Fatalf("ProtocolErrors = %d, want 1", pe)
	}
}

// TestForgedProbeRejected: in a keyed cluster an injected probe with an
// absurd timestamp is dropped before it can poison the coordinator's own
// incoming statistics, and the run stays sound.
func TestForgedProbeRejected(t *testing.T) {
	offsets := []time.Duration{0, 60 * time.Millisecond, -30 * time.Millisecond}
	keys := DeriveKeys(len(offsets), 9)
	nodes := startCluster(t, offsets, time.Millisecond, 0.5, func(c *Config) {
		c.Keys = keys
	})

	raw, err := net.Dial("tcp", nodes[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	// SendClock far in the past inflates the measured delay way past the
	// declared 0.5s bound; accepted, it would wreck the constraint system.
	forged := &Message{Type: "probe", From: 1, SendClock: -1000}
	if err := signMessage(nil, forged); err != nil {
		t.Fatal(err)
	}
	if err := c.send(forged, 2*time.Second); err != nil {
		t.Fatalf("send forged probe: %v", err)
	}
	_ = c.close()

	waitClusterSound(t, nodes, offsets)
	if af := nodes[0].Stats().AuthFailures; af != 1 {
		t.Fatalf("AuthFailures = %d, want 1", af)
	}
}

// waitClusterSound waits out every node and checks the corrections
// recover the offsets within the advertised precision.
func waitClusterSound(t *testing.T, nodes []*Node, offsets []time.Duration) {
	t.Helper()
	outs := make([]*Outcome, len(nodes))
	for i, node := range nodes {
		out, err := node.Wait(8 * time.Second)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		outs[i] = out
	}
	starts := make([]float64, len(offsets))
	for p, off := range offsets {
		starts[p] = -off.Seconds()
	}
	rho, err := core.Rho(starts, outs[0].Corrections)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(outs[0].Precision, 1) {
		t.Fatal("infinite precision")
	}
	if rho > outs[0].Precision+1e-9 {
		t.Fatalf("realized %v exceeds precision %v", rho, outs[0].Precision)
	}
}

// TestKeyringValidation: malformed keyrings are rejected at Start.
func TestKeyringValidation(t *testing.T) {
	base := func() Config {
		return Config{
			ID: 0, N: 2, Listen: "127.0.0.1:0", Coordinator: 0,
			Probes: 1, Interval: time.Millisecond, Timeout: time.Second,
		}
	}
	tests := []struct {
		name string
		keys map[model.ProcID][]byte
		want string
	}{
		{"missing own key", map[model.ProcID][]byte{1: []byte("k")}, "no key for own id"},
		{"out of range id", map[model.ProcID][]byte{0: []byte("k"), 7: []byte("k")}, "out of range"},
		{"empty key", map[model.ProcID][]byte{0: []byte("k"), 1: nil}, "empty key"},
		{"incomplete keyring", map[model.ProcID][]byte{0: []byte("k")}, "incomplete keyring"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			cfg.Keys = tt.keys
			if _, err := Start(cfg); err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Start error = %v, want substring %q", err, tt.want)
			}
		})
	}
}
