package netsync

import (
	"net"
	"testing"
	"time"
)

// TestHostileFramesDoNotKillNodes: a well-formed frame of an unexpected
// type — a "result" pushed at any listener, a "report" pushed at a
// non-coordinator — is a per-connection protocol error, never a node
// failure. Pre-hardening, a 7-byte frame from any peer terminated the
// process; now the connection closes, the counter ticks and the cluster
// completes unauthenticated as before.
func TestHostileFramesDoNotKillNodes(t *testing.T) {
	offsets := []time.Duration{0, 80 * time.Millisecond, -20 * time.Millisecond}
	nodes := startCluster(t, offsets, time.Millisecond, 0.5)

	inject := func(addr string, m *Message) {
		t.Helper()
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c := newConn(raw)
		if err := c.send(m, 2*time.Second); err != nil {
			t.Fatalf("send hostile frame: %v", err)
		}
		// The node answers by closing the connection, not by dying.
		if _, err := c.recv(4 * time.Second); err == nil {
			t.Fatal("hostile frame was answered instead of dropped")
		}
		_ = c.close()
	}

	// A result frame at the coordinator's listener.
	inject(nodes[0].Addr(), &Message{Type: "result", Corrections: []float64{0, 0, 0}})
	// A report frame at a non-coordinator.
	inject(nodes[1].Addr(), &Message{Type: "report", Origin: 2})
	// An out-of-range origin at the coordinator (unauthenticated cluster):
	// absorbed, it would inflate the quorum count and mark honest nodes
	// missing.
	inject(nodes[0].Addr(), &Message{Type: "report", Origin: -1})

	waitClusterSound(t, nodes, offsets)
	if pe := nodes[0].Stats().ProtocolErrors; pe != 2 {
		t.Fatalf("coordinator ProtocolErrors = %d, want 2", pe)
	}
	if pe := nodes[1].Stats().ProtocolErrors; pe != 1 {
		t.Fatalf("node 1 ProtocolErrors = %d, want 1", pe)
	}
}
