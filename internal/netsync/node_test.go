package netsync

import (
	"math"
	"testing"
	"time"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
)

// startCluster spins up n in-process nodes on loopback with the given
// clock offsets, complete topology, symmetric [0, maxDelay] assumptions.
// Optional mutators adjust every node's config before start (e.g. to
// install a keyring).
func startCluster(t *testing.T, offsets []time.Duration, jitter time.Duration, maxDelay float64, mutate ...func(*Config)) []*Node {
	t.Helper()
	n := len(offsets)

	// Bind all listeners first so peers can dial immediately.
	nodes := make([]*Node, n)
	cfgs := make([]Config, n)
	bounds, err := delay.SymmetricBounds(0, maxDelay)
	if err != nil {
		t.Fatal(err)
	}
	var links []core.Link
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			links = append(links, core.Link{P: model.ProcID(i), Q: model.ProcID(j), A: bounds})
		}
	}
	for i := range cfgs {
		cfgs[i] = Config{
			ID:          model.ProcID(i),
			N:           n,
			Listen:      "127.0.0.1:0",
			Coordinator: 0,
			Links:       links,
			Probes:      4,
			Interval:    2 * time.Millisecond,
			ClockOffset: offsets[i],
			Jitter:      jitter,
			Seed:        int64(1000 + i),
			Timeout:     5 * time.Second,
			Centered:    true,
		}
		for _, f := range mutate {
			f(&cfgs[i])
		}
	}
	// Start the coordinator first to learn its address.
	coord, err := Start(cfgs[0])
	if err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	nodes[0] = coord
	t.Cleanup(coord.Shutdown)

	// The coordinator has no peers yet (complete topology needs all
	// addresses up front) — instead each NON-coordinator probes every
	// lower-id node already started, and receives probes from higher ids;
	// both directions still get traffic because probing is directional
	// per sender. Start nodes in order, wiring peers to all prior nodes.
	addrs := make(map[model.ProcID]string, n)
	addrs[0] = coord.Addr()
	for i := 1; i < n; i++ {
		peers := make(map[model.ProcID]string, i)
		for j := 0; j < i; j++ {
			peers[model.ProcID(j)] = addrs[model.ProcID(j)]
		}
		cfgs[i].Peers = peers
		cfgs[i].CoordinatorAddr = coord.Addr()
		node, err := Start(cfgs[i])
		if err != nil {
			t.Fatalf("start node %d: %v", i, err)
		}
		nodes[i] = node
		t.Cleanup(node.Shutdown)
		addrs[model.ProcID(i)] = node.Addr()
	}
	return nodes
}

// TestClusterEndToEnd runs a real 4-node TCP cluster: every node applies a
// correction, the corrections recover the configured clock offsets within
// the reported precision, and all nodes agree on the vector.
func TestClusterEndToEnd(t *testing.T) {
	offsets := []time.Duration{0, 120 * time.Millisecond, -80 * time.Millisecond, 450 * time.Millisecond}
	nodes := startCluster(t, offsets, 2*time.Millisecond, 0.5)

	outs := make([]*Outcome, len(nodes))
	for i, node := range nodes {
		out, err := node.Wait(8 * time.Second)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		outs[i] = out
	}
	precision := outs[0].Precision
	if math.IsInf(precision, 1) || precision <= 0 {
		t.Fatalf("precision = %v", precision)
	}
	for i, out := range outs {
		if out.Precision != precision {
			t.Errorf("node %d precision %v != %v", i, out.Precision, precision)
		}
		for p := range out.Corrections {
			if out.Corrections[p] != outs[0].Corrections[p] {
				t.Errorf("node %d disagrees on correction %d", i, p)
			}
		}
	}

	// Ground truth: S_p = -offset_p, so corrected clocks agree iff
	// max |(S_p - x_p) - (S_q - x_q)| <= precision.
	starts := make([]float64, len(offsets))
	for p, off := range offsets {
		starts[p] = -off.Seconds()
	}
	rho, err := core.Rho(starts, outs[0].Corrections)
	if err != nil {
		t.Fatal(err)
	}
	if rho > precision+1e-9 {
		t.Errorf("realized discrepancy %v exceeds precision %v", rho, precision)
	}
	// Sanity: without corrections the skew is ~0.53 s; with them, the
	// residual must be far smaller than the largest offset.
	if rho > 0.45 {
		t.Errorf("corrections did not reduce the skew: rho = %v", rho)
	}
}

// TestClusterPairOneWayProbes: with only one side probing, the other
// direction carries no traffic but the reports still connect the system
// (both endpoints report their incoming direction).
func TestClusterPair(t *testing.T) {
	offsets := []time.Duration{0, -60 * time.Millisecond}
	nodes := startCluster(t, offsets, time.Millisecond, 0.5)
	for i, node := range nodes {
		out, err := node.Wait(8 * time.Second)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		if math.IsInf(out.Precision, 1) {
			t.Fatalf("node %d: infinite precision", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"bad id", Config{ID: 5, N: 2, Coordinator: 0, Listen: "127.0.0.1:0"}},
		{"bad coordinator", Config{ID: 0, N: 2, Coordinator: 7, Listen: "127.0.0.1:0"}},
		{"missing coordinator addr", Config{ID: 1, N: 2, Coordinator: 0, Listen: "127.0.0.1:0"}},
		{"self peer", Config{ID: 0, N: 2, Coordinator: 0, Listen: "127.0.0.1:0",
			Peers: map[model.ProcID]string{0: "x"}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			node, err := Start(tt.cfg)
			if err == nil {
				node.Shutdown()
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestLinkStatsValidation(t *testing.T) {
	if _, err := (LinkStats{Count: 0}).toDirStats(); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := (LinkStats{Count: 2, Min: 3, Max: 1}).toDirStats(); err == nil {
		t.Error("inverted stats accepted")
	}
	st, err := (LinkStats{Count: 2, Min: 1, Max: 3}).toDirStats()
	if err != nil || st.Count != 2 {
		t.Errorf("valid stats rejected: %v %v", st, err)
	}
}

// TestShutdownIdempotent: Shutdown twice and before completion must not
// panic or hang.
func TestShutdownIdempotent(t *testing.T) {
	node, err := Start(Config{
		ID: 0, N: 3, Coordinator: 0, Listen: "127.0.0.1:0",
		Probes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Shutdown()
	node.Shutdown()
}

// TestApplyResultErrors exercises the result-handling failure paths.
func TestApplyResultErrors(t *testing.T) {
	node, err := Start(Config{ID: 0, N: 2, Coordinator: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Shutdown()

	// Coordinator-reported error surfaces through Wait.
	node.applyResult(&Message{Type: "result", Err: "boom"})
	if _, err := node.Wait(100 * time.Millisecond); err == nil {
		t.Error("coordinator error not surfaced")
	}

	// Malformed result (missing corrections) surfaces too.
	node2, err := Start(Config{ID: 1, N: 2, Coordinator: 0, Listen: "127.0.0.1:0", CoordinatorAddr: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Shutdown()
	node2.applyResult(&Message{Type: "result", Corrections: []float64{0}})
	if _, err := node2.Wait(100 * time.Millisecond); err == nil {
		t.Error("short corrections vector not surfaced")
	}
}

// TestWaitTimeout: a node that never hears back reports a timeout.
func TestWaitTimeout(t *testing.T) {
	node, err := Start(Config{
		ID: 0, N: 3, Coordinator: 0, Listen: "127.0.0.1:0",
		Probes: 1, ReportDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Shutdown()
	// Two reports will never arrive (no other nodes exist).
	if _, err := node.Wait(150 * time.Millisecond); err == nil {
		t.Error("missing-report cluster did not time out")
	}
}
