// Package netsync runs the synchronization protocol over real TCP
// connections: every node is a small server exchanging timestamped probes
// with its peers; one node additionally acts as coordinator, collecting
// per-link statistics reports and answering with the optimal corrections
// (the centralized computation of the paper, deployed).
//
// Clock model: each node's clock reads Unix time plus a configured offset
// (the offset emulates the unknown start skew; on real deployments it IS
// the unknown quantity being recovered). Hardware clocks of one machine
// tick at one rate, so the drift-free assumption holds exactly for
// in-process and same-host clusters; across hosts, inflate assumptions
// with the drift package.
//
// Wire format: newline-delimited JSON, one message per line.
package netsync

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"clocksync/internal/model"
	"clocksync/internal/obs"
	"clocksync/internal/trace"
)

// maxFrame bounds one wire frame. Frames are per-link statistics, result
// vectors or probes — kilobytes at realistic cluster sizes — so a
// megabyte is generous headroom while keeping a hostile peer from
// growing the read buffer without bound.
const maxFrame = 1 << 20

// Message is the wire envelope; exactly one payload field is set,
// selected by Type.
type Message struct {
	Type string `json:"type"` // probe|report|result

	// probe
	From      model.ProcID `json:"from,omitempty"`
	SendClock float64      `json:"sendClock,omitempty"`

	// report
	Origin model.ProcID `json:"origin,omitempty"`
	Links  []LinkStats  `json:"links,omitempty"`

	// result
	Corrections []float64      `json:"corrections,omitempty"`
	Precision   float64        `json:"precision,omitempty"`
	Degraded    bool           `json:"degraded,omitempty"`
	Missing     []model.ProcID `json:"missing,omitempty"`
	Synced      []bool         `json:"synced,omitempty"`
	Err         string         `json:"err,omitempty"`

	// Trace context, attached to every frame type when the cluster runs
	// with tracing enabled (Config.Trace) and absent otherwise, so the
	// wire format is byte-identical to older peers until tracing is on.
	// Old peers ignore the fields (unknown JSON keys are skipped); in
	// keyed clusters they are covered by the MAC like every other field.
	//
	// TraceID is the cluster-wide correlation id (DeriveTraceID); Span is
	// the sender-side span causally preceding this frame (a probe's
	// "probe" burst span, a report's "report.send" mark), letting the
	// receiver parent its receive span across the process boundary; Round
	// is the synchronization round the frame belongs to.
	TraceID string     `json:"traceId,omitempty"`
	Span    obs.SpanID `json:"span,omitempty"`
	Round   int        `json:"round,omitempty"`
	// Spans, on report frames, ships the reporter's locally recorded
	// spans so the coordinator can reassemble one cluster-wide round
	// trace. Span ids are collision-free across nodes by construction
	// (obs.Trace.NewSpanID allocates from per-node id ranges).
	Spans []obs.Span `json:"spans,omitempty"`

	// MAC authenticates probe and report frames under the sender's key
	// when the cluster is configured with a keyring (Config.Keys); empty
	// otherwise.
	MAC []byte `json:"mac,omitempty"`
}

// messageMAC computes the HMAC-SHA256 of the message's canonical JSON
// encoding with the MAC field emptied. Struct-driven marshaling emits
// fields in declaration order, so signer and verifier agree on the bytes
// without a bespoke canonical form.
func messageMAC(key []byte, m *Message) ([]byte, error) {
	cp := *m
	cp.MAC = nil
	body, err := json.Marshal(&cp)
	if err != nil {
		return nil, fmt.Errorf("netsync: encode for MAC: %w", err)
	}
	h := hmac.New(sha256.New, key)
	h.Write(body)
	return h.Sum(nil), nil
}

// signMessage stamps the message's MAC under key.
func signMessage(key []byte, m *Message) error {
	mac, err := messageMAC(key, m)
	if err != nil {
		return err
	}
	m.MAC = mac
	return nil
}

// verifyMessage checks the message's MAC under key in constant time.
func verifyMessage(key []byte, m *Message) bool {
	want, err := messageMAC(key, m)
	return err == nil && hmac.Equal(want, m.MAC)
}

// DeriveKeys returns a deterministic keyring for tests and examples: key
// p is SHA-256 of the seed and the node id. Real deployments provision
// keys out of band; only distinctness and reproducibility matter here.
func DeriveKeys(n int, seed int64) map[model.ProcID][]byte {
	keys := make(map[model.ProcID][]byte, n)
	for p := 0; p < n; p++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("clocksync-netsync-key:%d:%d", seed, p)))
		keys[model.ProcID(p)] = sum[:]
	}
	return keys
}

// DeriveTraceID returns the deterministic cluster-wide trace id for a
// cluster seed: every participant computes the same id from its own
// configuration, so probe and report frames correlate without any
// id-agreement handshake.
func DeriveTraceID(seed int64) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("clocksync-netsync-trace:%d", seed)))
	return hex.EncodeToString(sum[:8])
}

// LinkStats carries the reporter's incoming-direction summary of one link.
type LinkStats struct {
	From  model.ProcID `json:"from"`
	To    model.ProcID `json:"to"`
	Count int          `json:"count"`
	Min   float64      `json:"min"`
	Max   float64      `json:"max"`
}

// toDirStats converts the wire form back to trace statistics.
func (ls LinkStats) toDirStats() (trace.DirStats, error) {
	if ls.Count <= 0 {
		return trace.DirStats{}, fmt.Errorf("netsync: link stats with count %d", ls.Count)
	}
	if ls.Max < ls.Min {
		return trace.DirStats{}, fmt.Errorf("netsync: inverted link stats [%v,%v]", ls.Min, ls.Max)
	}
	return trace.DirStats{Count: ls.Count, Min: ls.Min, Max: ls.Max}, nil
}

// conn wraps a TCP connection with JSON line framing.
type conn struct {
	raw net.Conn
	r   *bufio.Reader
	enc *json.Encoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, r: bufio.NewReader(raw), enc: json.NewEncoder(raw)}
}

func (c *conn) send(m *Message, timeout time.Duration) error {
	if timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	return c.enc.Encode(m) // Encode appends the newline
}

func (c *conn) recv(timeout time.Duration) (*Message, error) {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	line, err := readFrame(c.r)
	if err != nil {
		return nil, err
	}
	return decodeMessage(line)
}

// readFrame reads one newline-terminated frame of at most maxFrame
// bytes. The cap is enforced chunk by chunk, so a peer streaming an
// endless line costs a bounded buffer, not unbounded memory.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		if len(line)+len(chunk) > maxFrame {
			return nil, fmt.Errorf("netsync: frame exceeds %d bytes", maxFrame)
		}
		line = append(line, chunk...)
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue // newline not in the buffer yet: keep accumulating
		default:
			return nil, err
		}
	}
}

// decodeMessage parses one frame. It is the single entry point for
// untrusted bytes (FuzzWireDecode drives it): malformed input must yield
// an error — never a panic, and never allocation beyond the frame's own
// size times a small constant.
func decodeMessage(line []byte) (*Message, error) {
	if len(line) > maxFrame {
		return nil, fmt.Errorf("netsync: frame exceeds %d bytes", maxFrame)
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("netsync: decode message: %w", err)
	}
	switch m.Type {
	case "probe", "report", "result":
	default:
		return nil, fmt.Errorf("netsync: unknown message type %q", m.Type)
	}
	return &m, nil
}

func (c *conn) close() error { return c.raw.Close() }
