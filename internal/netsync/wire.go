// Package netsync runs the synchronization protocol over real TCP
// connections: every node is a small server exchanging timestamped probes
// with its peers; one node additionally acts as coordinator, collecting
// per-link statistics reports and answering with the optimal corrections
// (the centralized computation of the paper, deployed).
//
// Clock model: each node's clock reads Unix time plus a configured offset
// (the offset emulates the unknown start skew; on real deployments it IS
// the unknown quantity being recovered). Hardware clocks of one machine
// tick at one rate, so the drift-free assumption holds exactly for
// in-process and same-host clusters; across hosts, inflate assumptions
// with the drift package.
//
// Wire format: newline-delimited JSON, one message per line.
package netsync

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"clocksync/internal/model"
	"clocksync/internal/trace"
)

// Message is the wire envelope; exactly one payload field is set,
// selected by Type.
type Message struct {
	Type string `json:"type"` // probe|report|result

	// probe
	From      model.ProcID `json:"from,omitempty"`
	SendClock float64      `json:"sendClock,omitempty"`

	// report
	Origin model.ProcID `json:"origin,omitempty"`
	Links  []LinkStats  `json:"links,omitempty"`

	// result
	Corrections []float64      `json:"corrections,omitempty"`
	Precision   float64        `json:"precision,omitempty"`
	Degraded    bool           `json:"degraded,omitempty"`
	Missing     []model.ProcID `json:"missing,omitempty"`
	Synced      []bool         `json:"synced,omitempty"`
	Err         string         `json:"err,omitempty"`
}

// LinkStats carries the reporter's incoming-direction summary of one link.
type LinkStats struct {
	From  model.ProcID `json:"from"`
	To    model.ProcID `json:"to"`
	Count int          `json:"count"`
	Min   float64      `json:"min"`
	Max   float64      `json:"max"`
}

// toDirStats converts the wire form back to trace statistics.
func (ls LinkStats) toDirStats() (trace.DirStats, error) {
	if ls.Count <= 0 {
		return trace.DirStats{}, fmt.Errorf("netsync: link stats with count %d", ls.Count)
	}
	if ls.Max < ls.Min {
		return trace.DirStats{}, fmt.Errorf("netsync: inverted link stats [%v,%v]", ls.Min, ls.Max)
	}
	return trace.DirStats{Count: ls.Count, Min: ls.Min, Max: ls.Max}, nil
}

// conn wraps a TCP connection with JSON line framing.
type conn struct {
	raw net.Conn
	r   *bufio.Reader
	enc *json.Encoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, r: bufio.NewReader(raw), enc: json.NewEncoder(raw)}
}

func (c *conn) send(m *Message, timeout time.Duration) error {
	if timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	return c.enc.Encode(m) // Encode appends the newline
}

func (c *conn) recv(timeout time.Duration) (*Message, error) {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, fmt.Errorf("netsync: decode message: %w", err)
	}
	return &m, nil
}

func (c *conn) close() error { return c.raw.Close() }
