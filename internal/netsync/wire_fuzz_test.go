package netsync

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzWireDecode drives the two entry points for untrusted wire bytes:
// frame reading (the maxFrame cap) and message decoding. Malformed input
// must produce an error — never a panic — and an accepted message must
// carry one of the three known types. The frame reader must never hand
// back more than maxFrame bytes no matter how the input is chunked.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(`{"type":"probe","from":1,"sendClock":2.5}`))
	f.Add([]byte(`{"type":"report","origin":3,"links":[{"from":0,"to":3,"count":2,"min":0.1,"max":0.2}],"mac":"c2ln"}`))
	f.Add([]byte(`{"type":"result","corrections":[0.1,-0.2],"precision":0.05,"synced":[true,false]}`))
	f.Add([]byte(`{"type":"gossip"}`))
	f.Add([]byte(`{"type":42}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{})
	f.Add([]byte("{\"type\":\"probe\"}\n{\"type\":\"probe\"}"))
	f.Add(bytes.Repeat([]byte("a"), 1<<16))
	f.Fuzz(func(t *testing.T, line []byte) {
		m, err := decodeMessage(line)
		if err == nil {
			switch m.Type {
			case "probe", "report", "result":
			default:
				t.Fatalf("decoded unknown type %q without error", m.Type)
			}
		} else if m != nil {
			t.Fatal("decodeMessage returned both a message and an error")
		}

		// A small read buffer forces the chunk-by-chunk accumulation
		// path; the cap must hold regardless.
		r := bufio.NewReaderSize(bytes.NewReader(append(line, '\n')), 16)
		frame, err := readFrame(r)
		if err == nil && len(frame) > maxFrame {
			t.Fatalf("readFrame returned %d bytes, cap is %d", len(frame), maxFrame)
		}
	})
}
