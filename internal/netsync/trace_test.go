package netsync

import (
	"encoding/json"
	"testing"
	"time"

	"clocksync/internal/obs"
)

// TestClusterTraceAncestry runs a keyed 5-node cluster with per-node
// traces and verifies the tentpole invariant: the coordinator reassembles
// ONE cluster-wide round trace in which every probe and report span —
// including spans shipped over the wire from other processes — chains up
// the parent links to the well-known round root, and the whole thing
// exports as valid Chrome trace_event JSON.
func TestClusterTraceAncestry(t *testing.T) {
	const (
		n    = 5
		seed = int64(99) // shared: keyring AND the derived trace id
	)
	offsets := []time.Duration{0, 30 * time.Millisecond, -20 * time.Millisecond, 75 * time.Millisecond, 10 * time.Millisecond}
	traces := make([]*obs.Trace, n)
	for i := range traces {
		traces[i] = obs.NewTrace("trace-test")
	}
	keys := DeriveKeys(n, seed)
	nodes := startCluster(t, offsets, time.Millisecond, 0.5, func(cfg *Config) {
		cfg.Seed = seed // trace ids derive from the seed, so it must be shared
		cfg.Keys = keys
		cfg.Trace = traces[cfg.ID]
		cfg.Session = "trace-test"
	})
	for i, node := range nodes {
		if _, err := node.Wait(8 * time.Second); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}

	cluster := traces[0] // the coordinator's trace holds the merged round
	if want := DeriveTraceID(seed); cluster.TraceID() != want {
		t.Fatalf("cluster trace id %q, want the seed-derived %q", cluster.TraceID(), want)
	}
	for i := 1; i < n; i++ {
		if traces[i].TraceID() != cluster.TraceID() {
			t.Errorf("node %d trace id %q differs from the cluster's %q — correlation broken",
				i, traces[i].TraceID(), cluster.TraceID())
		}
	}

	spans := cluster.Spans()
	byID := make(map[obs.SpanID]obs.Span, len(spans))
	rootSeen := false
	for _, s := range spans {
		if s.ID == obs.RootSpanID {
			rootSeen = true
		}
		if s.ID != 0 {
			if dup, clash := byID[s.ID]; clash && dup.Phase != s.Phase {
				t.Errorf("span id %#x used by both %q and %q", uint64(s.ID), dup.Phase, s.Phase)
			}
			byID[s.ID] = s
		}
	}
	if !rootSeen {
		t.Fatal("no round root span in the reassembled cluster trace")
	}

	reporters := map[int]bool{}
	checked := 0
	for _, s := range spans {
		switch s.Phase {
		case "probe", "probe.recv", "report", "report.send", "report.recv":
		default:
			continue
		}
		checked++
		if s.Phase == "report.send" {
			reporters[s.Proc] = true
		}
		id, hops := s.ID, 0
		for id != obs.RootSpanID {
			sp, ok := byID[id]
			if !ok || sp.Parent == 0 {
				t.Fatalf("span %q (proc %d, id %#x) does not chain to the round root", s.Phase, s.Proc, uint64(s.ID))
			}
			if hops++; hops > len(spans) {
				t.Fatalf("parent cycle at span %q (id %#x)", s.Phase, uint64(s.ID))
			}
			id = sp.Parent
		}
	}
	if checked == 0 {
		t.Fatal("no probe/report spans in the cluster trace")
	}
	for p := 1; p < n; p++ {
		if !reporters[p] {
			t.Errorf("no report.send span from node %d reached the coordinator trace", p)
		}
	}

	// The merged trace must export as loadable Chrome trace_event JSON.
	data, err := cluster.ChromeJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("ChromeJSON invalid: %v", err)
	}
	if len(doc.TraceEvents) < checked {
		t.Errorf("chrome export has %d events for %d causal spans", len(doc.TraceEvents), checked)
	}
}

// TestDeriveTraceID: deterministic, seed-sensitive, and hex-short enough
// to read in exports.
func TestDeriveTraceID(t *testing.T) {
	a, b := DeriveTraceID(1), DeriveTraceID(1)
	if a != b {
		t.Errorf("DeriveTraceID not deterministic: %q vs %q", a, b)
	}
	if DeriveTraceID(2) == a {
		t.Error("DeriveTraceID ignores the seed")
	}
	if len(a) == 0 || len(a) > 16 {
		t.Errorf("DeriveTraceID(1) = %q, want a short hex id", a)
	}
	for _, c := range a {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			t.Errorf("DeriveTraceID(1) = %q contains non-hex %q", a, c)
		}
	}
}
