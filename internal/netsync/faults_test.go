package netsync

import (
	"math"
	"net"
	"testing"
	"time"

	"clocksync/internal/core"
	"clocksync/internal/delay"
	"clocksync/internal/model"
)

// deadAddr binds and immediately closes a loopback listener, yielding an
// address that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// TestClusterDeadPeer: a 3-node cluster where node 2 never starts. The
// coordinator's report grace expires and the two live nodes synchronize
// anyway, with the dead node reported missing and excluded from the
// synchronized component; the live node keeps probing despite its dead
// peer and Wait never wedges.
func TestClusterDeadPeer(t *testing.T) {
	bounds, err := delay.SymmetricBounds(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var links []core.Link
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			links = append(links, core.Link{P: model.ProcID(i), Q: model.ProcID(j), A: bounds})
		}
	}
	base := Config{
		N:              3,
		Listen:         "127.0.0.1:0",
		Coordinator:    0,
		Links:          links,
		Probes:         3,
		Interval:       2 * time.Millisecond,
		Jitter:         time.Millisecond,
		Timeout:        5 * time.Second,
		ReportDelay:    50 * time.Millisecond,
		ReportGrace:    400 * time.Millisecond,
		DialAttempts:   2,
		DialBackoff:    10 * time.Millisecond,
		DialMaxBackoff: 50 * time.Millisecond,
		Centered:       true,
	}

	coordCfg := base
	coordCfg.ID = 0
	coordCfg.Seed = 1
	coord, err := Start(coordCfg)
	if err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	t.Cleanup(coord.Shutdown)

	liveCfg := base
	liveCfg.ID = 1
	liveCfg.Seed = 2
	liveCfg.ClockOffset = 90 * time.Millisecond
	liveCfg.CoordinatorAddr = coord.Addr()
	liveCfg.Peers = map[model.ProcID]string{
		0: coord.Addr(),
		2: deadAddr(t), // node 2 does not exist
	}
	live, err := Start(liveCfg)
	if err != nil {
		t.Fatalf("start live node: %v", err)
	}
	t.Cleanup(live.Shutdown)

	for name, node := range map[string]*Node{"coordinator": coord, "live": live} {
		out, err := node.Wait(8 * time.Second)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Degraded {
			t.Errorf("%s: outcome not degraded despite a dead node", name)
		}
		if len(out.Missing) != 1 || out.Missing[0] != 2 {
			t.Errorf("%s: Missing = %v, want [2]", name, out.Missing)
		}
		if len(out.Synced) != 3 || !out.Synced[0] || !out.Synced[1] || out.Synced[2] {
			t.Errorf("%s: Synced = %v, want [true true false]", name, out.Synced)
		}
		if math.IsInf(out.Precision, 0) || math.IsNaN(out.Precision) || out.Precision <= 0 {
			t.Errorf("%s: precision = %v, want finite positive", name, out.Precision)
		}
		// The live pair's corrections must recover the configured offset
		// within the degraded precision.
		skew := math.Abs((out.Corrections[0] - out.Corrections[1]) - liveCfg.ClockOffset.Seconds())
		if skew > out.Precision+1e-9 {
			t.Errorf("%s: residual skew %v exceeds precision %v", name, skew, out.Precision)
		}
	}

	// The injected faults must be visible in the lifecycle counters: the
	// live node burned dial retries on the dead peer and gave up on it,
	// and the coordinator's report grace fired to force the degraded
	// compute.
	live2 := live.Stats()
	if live2.DialRetries == 0 {
		t.Errorf("live node DialRetries = 0, want > 0 (dead peer)")
	}
	if live2.DialFailures == 0 {
		t.Errorf("live node DialFailures = 0, want > 0 (dead peer given up)")
	}
	if live2.ProbesSent == 0 {
		t.Errorf("live node ProbesSent = 0, want > 0")
	}
	cst := coord.Stats()
	if cst.GraceFires != 1 {
		t.Errorf("coordinator GraceFires = %d, want 1", cst.GraceFires)
	}
	if cst.ReportsReceived == 0 {
		t.Errorf("coordinator ReportsReceived = 0, want > 0")
	}
}

// TestDeadlineExpirationCounter: an inbound connection that never sends
// anything trips the read deadline, and the expiration is counted.
func TestDeadlineExpirationCounter(t *testing.T) {
	node, err := Start(Config{
		ID: 0, N: 1, Listen: "127.0.0.1:0", Coordinator: 0,
		Probes: 1, ReportDelay: time.Millisecond,
		Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Shutdown)

	raw, err := net.DialTimeout("tcp", node.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	deadline := time.Now().Add(2 * time.Second)
	for node.Stats().DeadlineExpirations == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("DeadlineExpirations still 0 after %v of idle connection", 2*time.Second)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLateReportGetsStoredResult: a report arriving after the grace
// deadline computed is answered immediately with the stored result.
func TestLateReportGetsStoredResult(t *testing.T) {
	bounds, err := delay.SymmetricBounds(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	links := []core.Link{{P: 0, Q: 1, A: bounds}}
	coord, err := Start(Config{
		ID: 0, N: 2, Listen: "127.0.0.1:0", Coordinator: 0, Links: links,
		Probes: 1, Interval: time.Millisecond,
		ReportDelay: 10 * time.Millisecond, ReportGrace: 100 * time.Millisecond,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Shutdown)

	if _, err := coord.Wait(5 * time.Second); err != nil {
		t.Fatalf("coordinator never computed degraded result: %v", err)
	}

	// Now a straggler connects and reports; it must get the stored result
	// straight back instead of being parked forever.
	raw, err := net.DialTimeout("tcp", coord.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	defer func() { _ = c.close() }()
	if err := c.send(&Message{Type: "report", Origin: 1}, time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := c.recv(2 * time.Second)
	if err != nil {
		t.Fatalf("late report not answered: %v", err)
	}
	if res.Type != "result" || !res.Degraded {
		t.Errorf("late reporter got %+v, want the stored degraded result", res)
	}
}

// TestDialRetryBackoff: the dialer retries a refusing address the
// configured number of times and then gives up with an error.
func TestDialRetryBackoff(t *testing.T) {
	node, err := Start(Config{
		ID: 0, N: 2, Listen: "127.0.0.1:0", Coordinator: 0,
		Probes: 1, DialAttempts: 3, DialBackoff: 5 * time.Millisecond,
		DialMaxBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Shutdown)

	start := time.Now()
	if _, err := node.dialRetry(deadAddr(t), "test", 0); err == nil {
		t.Fatal("dialRetry succeeded against a closed port")
	}
	// Two backoff sleeps of >= 2.5ms and >= 5ms minimum.
	if elapsed := time.Since(start); elapsed < 7*time.Millisecond {
		t.Errorf("dialRetry returned after %v; backoff not applied", elapsed)
	}
	st := node.Stats()
	if st.DialRetries != 2 {
		t.Errorf("DialRetries = %d, want 2", st.DialRetries)
	}
	if st.DialFailures != 1 {
		t.Errorf("DialFailures = %d, want 1", st.DialFailures)
	}
	if st.Dials != 0 {
		t.Errorf("Dials = %d, want 0 (nothing ever connected)", st.Dials)
	}
}
