package clocksync

import (
	"math"
	"strings"
	"testing"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(0); err == nil {
		t.Error("zero-processor system accepted")
	}
	s, err := NewSystem(3)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if s.N() != 3 {
		t.Errorf("N = %d, want 3", s.N())
	}
}

func TestAddLinkValidation(t *testing.T) {
	s, err := NewSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddLink(0, 0, NoBounds()); err == nil {
		t.Error("self link accepted")
	}
	if err := s.AddLink(0, 5, NoBounds()); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := s.AddLink(0, 1, nil); err == nil {
		t.Error("nil assumption accepted")
	}
	if err := s.AddLink(0, 1, NoBounds()); err != nil {
		t.Errorf("valid link rejected: %v", err)
	}
	if got := len(s.Links()); got != 1 {
		t.Errorf("Links() = %d entries, want 1", got)
	}
}

func TestAssumptionConstructors(t *testing.T) {
	if _, err := Bounds(0.1, 0.2, 0.1, Inf); err != nil {
		t.Errorf("Bounds: %v", err)
	}
	if _, err := Bounds(-1, 0.2, 0.1, 0.2); err == nil {
		t.Error("negative lower bound accepted")
	}
	if _, err := SymmetricBounds(0.1, 0.2); err != nil {
		t.Errorf("SymmetricBounds: %v", err)
	}
	if _, err := LowerBoundsOnly(0.1, 0.2); err != nil {
		t.Errorf("LowerBoundsOnly: %v", err)
	}
	if _, err := RTTBias(0.1); err != nil {
		t.Errorf("RTTBias: %v", err)
	}
	if _, err := RTTBias(-1); err == nil {
		t.Error("negative bias accepted")
	}
	b, err := Both(NoBounds(), MustSymmetricBounds(0, 1))
	if err != nil {
		t.Errorf("Both: %v", err)
	}
	if !strings.Contains(b.String(), "and") {
		t.Errorf("Both = %v", b)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSymmetricBounds(2,1) did not panic")
		}
	}()
	MustSymmetricBounds(2, 1)
}

// TestSynchronizeQuickstart mirrors the package documentation example and
// checks the numbers end to end: two processors, symmetric delays, known
// bounds — the corrections recover the skew and the precision is (U-L)/2.
func TestSynchronizeQuickstart(t *testing.T) {
	const (
		lb, ub = 0.001, 0.005
		d      = (lb + ub) / 2 // actual symmetric delay
		skew   = 0.4           // S_1 - S_0
	)
	sys, err := NewSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLink(0, 1, MustSymmetricBounds(lb, ub)); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(2)
	// p0 sends at its clock 1.0; arrival at p1's clock = 1 + d - skew.
	if err := rec.Observe(0, 1, 1.0, 1.0+d-skew); err != nil {
		t.Fatal(err)
	}
	// p1 sends at its clock 1.0; arrival at p0's clock = 1 + d + skew.
	if err := rec.Observe(1, 0, 1.0, 1.0+d+skew); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Synchronize(rec)
	if err != nil {
		t.Fatalf("Synchronize: %v", err)
	}
	if want := (ub - lb) / 2; math.Abs(res.Precision-want) > 1e-12 {
		t.Errorf("Precision = %v, want %v", res.Precision, want)
	}
	disc, err := Discrepancy([]float64{0, skew}, res.Corrections)
	if err != nil {
		t.Fatal(err)
	}
	if disc > 1e-12 {
		t.Errorf("Discrepancy = %v, want 0 (corrections %v)", disc, res.Corrections)
	}
}

func TestSynchronizeDisconnected(t *testing.T) {
	sys, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLink(0, 1, MustSymmetricBounds(0, 1)); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(3)
	if err := rec.Observe(0, 1, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := rec.Observe(1, 0, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Synchronize(rec)
	if err != nil {
		t.Fatalf("Synchronize: %v", err)
	}
	if !math.IsInf(res.Precision, 1) {
		t.Errorf("Precision = %v, want +Inf (p2 unconstrained)", res.Precision)
	}
	if len(res.Components) != 2 {
		t.Errorf("Components = %v, want 2", res.Components)
	}
}

func TestSynchronizeOptionsAndErrors(t *testing.T) {
	sys, err := NewSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddLink(0, 1, MustSymmetricBounds(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Synchronize(nil); err == nil {
		t.Error("nil recorder accepted")
	}
	if _, err := sys.Synchronize(NewRecorder(5)); err == nil {
		t.Error("size-mismatched recorder accepted")
	}
	rec := NewRecorder(2)
	if err := rec.Observe(0, 1, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := rec.Observe(1, 0, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if got := rec.Observed(0, 1); got != 1 {
		t.Errorf("Observed = %d, want 1", got)
	}
	res, err := sys.Synchronize(rec, WithRoot(1), Centered())
	if err != nil {
		t.Fatalf("Synchronize: %v", err)
	}
	if res.Corrections[1] != 0 {
		t.Errorf("root correction = %v, want 0", res.Corrections[1])
	}
}

func TestRunScenarioJSON(t *testing.T) {
	cfg := []byte(`{
		"processors": 4,
		"seed": 11,
		"startSpread": 2,
		"topology": {"kind": "ring"},
		"defaultLink": {
			"assumption": {"kind": "symmetricBounds", "lb": 0.05, "ub": 0.2},
			"delays": {"kind": "symmetric", "sampler": {"kind": "uniform", "lo": 0.05, "hi": 0.2}}
		},
		"protocol": {"kind": "burst", "k": 3, "spacing": 0.01, "warmup": -1}
	}`)
	rep, err := RunScenarioJSON(cfg, SimOptions{Verify: true, Trials: 100})
	if err != nil {
		t.Fatalf("RunScenarioJSON: %v", err)
	}
	if rep.Messages != 4*2*3 {
		t.Errorf("Messages = %d, want 24", rep.Messages)
	}
	if rep.Realized > rep.Result.Precision+1e-9 {
		t.Errorf("realized %v exceeds precision %v", rep.Realized, rep.Result.Precision)
	}
	if rep.Certificate == nil {
		t.Fatal("certificate missing")
	}
	if err := rep.Certificate.Ok(1e-9); err != nil {
		t.Errorf("certificate invalid: %v", err)
	}
}

func TestRunScenarioJSONErrors(t *testing.T) {
	if _, err := RunScenarioJSON([]byte("{"), SimOptions{}); err == nil {
		t.Error("invalid JSON accepted")
	}
	if _, err := RunScenarioJSON([]byte(`{"processors":0,"topology":{"kind":"ring"},"protocol":{"kind":"burst","warmup":-1}}`), SimOptions{}); err == nil {
		t.Error("invalid scenario accepted")
	}
}
